/**
 * @file
 * The portable fixed-width integer vector layer behind the SIMD
 * multi-geometry kernels — and the only file in the repository where
 * raw vendor intrinsics may appear (enforced by the repro-lint rule
 * portability/raw-intrinsic).
 *
 * The kernels need exactly the operations of the ShiftFoldHash
 * insert, applied to a row of 32-bit lanes with *per-lane* shift
 * distances (each level-2 column has its own FS R-k parameters):
 * load/store, broadcast, XOR, AND-mask, and variable per-lane left /
 * right shifts — plus a read prefetch hint for the table walk. That
 * small surface is provided as a backend struct `Native`:
 *
 *     using Vec = ...;                  // kLanes x u32 register
 *     static constexpr unsigned kLanes; // 4 (SSE2/NEON), 8 (AVX2)
 *                                       // or 16 (AVX-512)
 *     static constexpr SimdBackend kBackend;
 *     static Vec  loadu(const std::uint32_t* p);
 *     static void storeu(std::uint32_t* p, Vec v);
 *     static Vec  broadcast(std::uint32_t x);
 *     static Vec  bxor(Vec a, Vec b);
 *     static Vec  band(Vec a, Vec b);
 *     static Vec  shl(Vec v, Vec counts);  // counts must be < 32
 *     static Vec  shr(Vec v, Vec counts);  // counts must be < 32
 *
 * The gather-capable backends (AVX2, AVX-512) additionally provide
 * the stream-packed kernel surface (core/multi_geom_simd_impl.hh,
 * runMgPacked), which probes one shared level-2 table at kLanes
 * unrelated indices per step:
 *
 *     static Vec  add(Vec a, Vec b);        // per-lane u32 +
 *     static Vec  sub(Vec a, Vec b);        // per-lane u32 -
 *     static Vec  mul(Vec a, Vec b);        // per-lane u32 * (low 32)
 *     static std::uint32_t cmpeqMask(Vec a, Vec b); // lane bitmask
 *     static Vec  gather32(const std::uint32_t* base, Vec idx);
 *     static void scatter32(std::uint32_t* base, Vec idx, Vec val,
 *                           std::uint32_t mask);
 *     static Vec  rotateUp(Vec v, unsigned s);   // lane l <- (l-s)%W
 *     static Vec  blendMask(Vec a, Vec b, std::uint32_t mask);
 *     static std::uint32_t conflictMask(Vec v);  // lanes w/ earlier dup
 *
 * rotateUp, blendMask and conflictMask serve the gather column tier's
 * in-batch conflict forwarding (multi_geom_simd_impl.hh, runMgGather):
 * probing W consecutive records of *one* stream against a big level-2
 * table means a later lane may need the value an earlier lane just
 * stored. conflictMask names the lanes that have an earlier duplicate
 * (vpconflictd under AVX-512 — the runtime dispatch gates that TU on
 * CD, which every AVX-512F CPU carries; a rotate-compare loop on
 * AVX2), and the rotate-compare-blend loop then replays exactly those
 * read-after-write chains — zero iterations in the no-duplicate common
 * case. Each gather-capable backend also exposes `NativeCol`, the
 * vector type of the *column-parallel* history advance — 8 lanes even
 * under AVX-512, where Native is 16 but banks stay padded to
 * kMaxSimdLanes.
 *
 * scatter32 stores active lanes in ascending lane order, so when two
 * active lanes carry the same index the highest lane wins — the same
 * tie-break AVX-512 vpscatterdd implements in hardware, and the order
 * the scalar packed reference in core/multi_geom.cc replays. That
 * shared convention is what keeps packed counters bit-identical
 * across every backend.
 *
 * Which backend `Native` is resolves *per translation unit*: the
 * multi_geom_simd_<backend>.cc files define REPRO_SIMD_TU_<BACKEND>
 * before including this header (and are compiled with the matching
 * -m flags by src/core/CMakeLists.txt); any other includer gets the
 * widest instruction set its own compile flags advertise, falling
 * back to a plain-C++ scalar emulation. Each resolution lives in a
 * distinct inline namespace, so templates instantiated over `Native`
 * in differently-flagged translation units mangle differently — two
 * backends can coexist in one binary without ODR aliasing, which is
 * what makes the runtime dispatch in core/multi_geom.cc sound.
 *
 * Shift counts >= 32 are the caller's bug (hardware disagrees on the
 * semantics and scalar C++ makes it undefined); the kernels only ever
 * pass FS R-k parameters, which are bounded by the 28-bit level-2
 * index width.
 */

#ifndef DFCM_CORE_SIMD_HH
#define DFCM_CORE_SIMD_HH

#include <cstdint>

#include "core/cpu_features.hh"

#if defined(REPRO_SIMD_TU_AVX512) && !defined(__AVX512F__)
#error "multi_geom_simd_avx512.cc must be compiled with -mavx512f"
#endif
#if defined(REPRO_SIMD_TU_AVX2) && !defined(__AVX2__)
#error "multi_geom_simd_avx2.cc must be compiled with -mavx2"
#endif
#if defined(REPRO_SIMD_TU_SSE2) && !defined(__SSE2__)
#error "multi_geom_simd_sse2.cc requires an SSE2 target (x86-64)"
#endif
#if defined(REPRO_SIMD_TU_NEON) && !defined(__ARM_NEON)
#error "multi_geom_simd_neon.cc requires an Advanced-SIMD target"
#endif

#if defined(REPRO_SIMD_TU_AVX512)                                        \
        || (!defined(REPRO_SIMD_TU_AVX2) && !defined(REPRO_SIMD_TU_SSE2) \
            && !defined(REPRO_SIMD_TU_NEON) && defined(__AVX512F__))
#define REPRO_SIMD_BACKEND_AVX512 1
#elif defined(REPRO_SIMD_TU_AVX2)                                       \
        || (!defined(REPRO_SIMD_TU_SSE2) && !defined(REPRO_SIMD_TU_NEON) \
            && defined(__AVX2__))
#define REPRO_SIMD_BACKEND_AVX2 1
#elif defined(REPRO_SIMD_TU_SSE2)                                       \
        || (!defined(REPRO_SIMD_TU_NEON) && defined(__SSE2__))
#define REPRO_SIMD_BACKEND_SSE2 1
#elif defined(REPRO_SIMD_TU_NEON) || defined(__ARM_NEON)
#define REPRO_SIMD_BACKEND_NEON 1
#else
#define REPRO_SIMD_BACKEND_SCALAR 1
#endif

#if defined(REPRO_SIMD_BACKEND_AVX512)                                  \
        || defined(REPRO_SIMD_BACKEND_AVX2)                             \
        || defined(REPRO_SIMD_BACKEND_SSE2)
#include <immintrin.h>
#elif defined(REPRO_SIMD_BACKEND_NEON)
#include <arm_neon.h>
#endif

namespace vpred::simd
{

/** Read-prefetch hint: pull the cache line holding @p p toward L1.
 *  Purely advisory; a no-op where the compiler has no intrinsic. */
inline void
prefetchRead(const void* p)
{
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
    (void)p;
#endif
}

#if defined(REPRO_SIMD_BACKEND_AVX512)

inline namespace backend_avx512
{

/** 16 x u32 lanes. Used by the stream-packed kernel tier; the
 *  column-parallel tier keeps its 8-lane bank padding and dispatches
 *  AVX-512 to the AVX2 column kernel (core/multi_geom.cc). */
struct Native
{
    using Vec = __m512i;
    static constexpr unsigned kLanes = 16;
    static constexpr SimdBackend kBackend = SimdBackend::Avx512;

    static Vec
    loadu(const std::uint32_t* p)
    {
        return _mm512_loadu_si512(p);
    }
    static void
    storeu(std::uint32_t* p, Vec v)
    {
        _mm512_storeu_si512(p, v);
    }
    static Vec
    broadcast(std::uint32_t x)
    {
        return _mm512_set1_epi32(static_cast<int>(x));
    }
    static Vec bxor(Vec a, Vec b) { return _mm512_xor_si512(a, b); }
    static Vec band(Vec a, Vec b) { return _mm512_and_si512(a, b); }
    // Like gather32 below, the shifts use the full-mask forms: the
    // unmasked intrinsics carry an undefined pass-through source that
    // GCC's -Wmaybe-uninitialized flags under -Werror.
    static Vec shl(Vec v, Vec counts)
    {
        return _mm512_mask_sllv_epi32(_mm512_setzero_si512(),
                                      static_cast<__mmask16>(0xffff),
                                      v, counts);
    }
    static Vec shr(Vec v, Vec counts)
    {
        return _mm512_mask_srlv_epi32(_mm512_setzero_si512(),
                                      static_cast<__mmask16>(0xffff),
                                      v, counts);
    }
    static Vec add(Vec a, Vec b) { return _mm512_add_epi32(a, b); }
    static Vec sub(Vec a, Vec b) { return _mm512_sub_epi32(a, b); }
    static Vec mul(Vec a, Vec b) { return _mm512_mullo_epi32(a, b); }
    static std::uint32_t
    cmpeqMask(Vec a, Vec b)
    {
        return static_cast<std::uint32_t>(
                _mm512_cmpeq_epi32_mask(a, b));
    }
    static Vec
    gather32(const std::uint32_t* base, Vec idx)
    {
        // The full-mask form, not _mm512_i32gather_epi32: the
        // unmasked intrinsic's undefined pass-through source trips
        // -Wmaybe-uninitialized inside GCC's intrinsic header under
        // -Werror, and a zeroed source costs nothing.
        return _mm512_mask_i32gather_epi32(
                _mm512_setzero_si512(), static_cast<__mmask16>(0xffff),
                idx, reinterpret_cast<const int*>(base), 4);
    }
    static void
    scatter32(std::uint32_t* base, Vec idx, Vec val,
              std::uint32_t mask)
    {
        // vpscatterdd: duplicate indices resolve to the highest
        // active lane — the canonical packed store order.
        _mm512_mask_i32scatter_epi32(reinterpret_cast<int*>(base),
                                     static_cast<__mmask16>(mask),
                                     idx, val, 4);
    }
    static Vec
    rotateUp(Vec v, unsigned s)
    {
        // Result lane l = source lane (l - s) mod 16; the gather
        // tier's conflict-forwarding primitive (runMgGather).
        alignas(64) static constexpr std::uint32_t iota[16] = {
                0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15};
        const Vec idx = band(sub(loadu(iota), broadcast(s)),
                             broadcast(15u));
        // maskz with a full mask == plain vpermd, minus the
        // _mm512_undefined_epi32 merge source GCC warns about.
        return _mm512_maskz_permutexvar_epi32(__mmask16{0xffff}, idx, v);
    }
    static Vec
    blendMask(Vec a, Vec b, std::uint32_t mask)
    {
        return _mm512_mask_blend_epi32(static_cast<__mmask16>(mask),
                                       a, b);
    }
    static std::uint32_t
    conflictMask(Vec v)
    {
        // Lanes equal to at least one *earlier* lane — vpconflictd's
        // per-lane earlier-duplicate bitset, collapsed to a mask. The
        // runtime dispatch gates this TU on AVX-512CD (cpu_features).
        const Vec c = _mm512_conflict_epi32(v);
        return _mm512_test_epi32_mask(c, c);
    }
};

/**
 * 8 x u32 companion for the gather tier's history advance: per-entry
 * banks are padded to multiples of kMaxSimdLanes (8), so a 16-lane
 * advance would overrun them. -mavx512f implies AVX2, so the 256-bit
 * ops are available in this translation unit.
 */
struct NativeCol
{
    using Vec = __m256i;
    static constexpr unsigned kLanes = 8;
    static constexpr SimdBackend kBackend = SimdBackend::Avx512;

    static Vec
    loadu(const std::uint32_t* p)
    {
        return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    }
    static void
    storeu(std::uint32_t* p, Vec v)
    {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
    }
    static Vec
    broadcast(std::uint32_t x)
    {
        return _mm256_set1_epi32(static_cast<int>(x));
    }
    static Vec bxor(Vec a, Vec b) { return _mm256_xor_si256(a, b); }
    static Vec band(Vec a, Vec b) { return _mm256_and_si256(a, b); }
    static Vec shl(Vec v, Vec counts)
    {
        return _mm256_sllv_epi32(v, counts);
    }
    static Vec shr(Vec v, Vec counts)
    {
        return _mm256_srlv_epi32(v, counts);
    }
};

} // inline namespace backend_avx512

#elif defined(REPRO_SIMD_BACKEND_AVX2)

inline namespace backend_avx2
{

struct Native
{
    using Vec = __m256i;
    static constexpr unsigned kLanes = 8;
    static constexpr SimdBackend kBackend = SimdBackend::Avx2;

    static Vec
    loadu(const std::uint32_t* p)
    {
        return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    }
    static void
    storeu(std::uint32_t* p, Vec v)
    {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
    }
    static Vec
    broadcast(std::uint32_t x)
    {
        return _mm256_set1_epi32(static_cast<int>(x));
    }
    static Vec bxor(Vec a, Vec b) { return _mm256_xor_si256(a, b); }
    static Vec band(Vec a, Vec b) { return _mm256_and_si256(a, b); }
    static Vec shl(Vec v, Vec counts)
    {
        return _mm256_sllv_epi32(v, counts);
    }
    static Vec shr(Vec v, Vec counts)
    {
        return _mm256_srlv_epi32(v, counts);
    }
    static Vec add(Vec a, Vec b) { return _mm256_add_epi32(a, b); }
    static Vec sub(Vec a, Vec b) { return _mm256_sub_epi32(a, b); }
    static Vec mul(Vec a, Vec b) { return _mm256_mullo_epi32(a, b); }
    static std::uint32_t
    cmpeqMask(Vec a, Vec b)
    {
        return static_cast<std::uint32_t>(_mm256_movemask_ps(
                _mm256_castsi256_ps(_mm256_cmpeq_epi32(a, b))));
    }
    static Vec
    gather32(const std::uint32_t* base, Vec idx)
    {
        return _mm256_i32gather_epi32(
                reinterpret_cast<const int*>(base), idx, 4);
    }
    // AVX2 has gathers but no scatters; a lane-order store loop keeps
    // the duplicate-index tie-break identical to vpscatterdd (highest
    // active lane wins).
    static void
    scatter32(std::uint32_t* base, Vec idx, Vec val,
              std::uint32_t mask)
    {
        alignas(32) std::uint32_t i[8];
        alignas(32) std::uint32_t v[8];
        _mm256_store_si256(reinterpret_cast<__m256i*>(i), idx);
        _mm256_store_si256(reinterpret_cast<__m256i*>(v), val);
        for (unsigned l = 0; l < 8; ++l)
            if (mask & (1u << l))
                base[i[l]] = v[l];
    }
    static Vec
    rotateUp(Vec v, unsigned s)
    {
        // Result lane l = source lane (l - s) mod 8; the gather
        // tier's conflict-forwarding primitive (runMgGather).
        alignas(32) static constexpr std::uint32_t iota[8] = {
                0, 1, 2, 3, 4, 5, 6, 7};
        const Vec idx = band(sub(loadu(iota), broadcast(s)),
                             broadcast(7u));
        return _mm256_permutevar8x32_epi32(v, idx);
    }
    static Vec
    blendMask(Vec a, Vec b, std::uint32_t mask)
    {
        // Expand the lane bitmask to full-lane selectors; blendv picks
        // by each byte's top bit, which cmpeq's all-ones lanes set.
        alignas(32) static constexpr std::uint32_t bit[8] = {
                1, 2, 4, 8, 16, 32, 64, 128};
        const Vec bv = loadu(bit);
        const Vec sel = _mm256_cmpeq_epi32(band(broadcast(mask), bv), bv);
        return _mm256_blendv_epi8(a, b, sel);
    }
    static std::uint32_t
    conflictMask(Vec v)
    {
        // No vpconflictd below AVX-512CD: accumulate every
        // rotate-compare against earlier lanes. Seven fixed-shift
        // permutes, no data-dependent branches.
        std::uint32_t acc = 0;
        for (unsigned s = 1; s < kLanes; ++s)
            acc |= cmpeqMask(v, rotateUp(v, s)) & (0xffu << s);
        return acc & 0xffu;
    }
};

/** The column-parallel ops are the native width here: bank padding
 *  (kMaxSimdLanes) matches kLanes. */
using NativeCol = Native;

} // inline namespace backend_avx2

#elif defined(REPRO_SIMD_BACKEND_SSE2)

inline namespace backend_sse2
{

struct Native
{
    using Vec = __m128i;
    static constexpr unsigned kLanes = 4;
    static constexpr SimdBackend kBackend = SimdBackend::Sse2;

    static Vec
    loadu(const std::uint32_t* p)
    {
        return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    }
    static void
    storeu(std::uint32_t* p, Vec v)
    {
        _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
    }
    static Vec
    broadcast(std::uint32_t x)
    {
        return _mm_set1_epi32(static_cast<int>(x));
    }
    static Vec bxor(Vec a, Vec b) { return _mm_xor_si128(a, b); }
    static Vec band(Vec a, Vec b) { return _mm_and_si128(a, b); }

    // SSE2 has no per-lane variable shifts (they arrived with AVX2);
    // a stack round-trip keeps the backend correct on baseline
    // x86-64 silicon. The other vector ops still pay their way, and
    // the AVX2 backend is what the dispatcher prefers when it can.
    static Vec
    shl(Vec v, Vec counts)
    {
        alignas(16) std::uint32_t a[4], c[4];
        _mm_store_si128(reinterpret_cast<__m128i*>(a), v);
        _mm_store_si128(reinterpret_cast<__m128i*>(c), counts);
        for (int i = 0; i < 4; ++i)
            a[i] <<= (c[i] & 31u);
        return _mm_load_si128(reinterpret_cast<const __m128i*>(a));
    }
    static Vec
    shr(Vec v, Vec counts)
    {
        alignas(16) std::uint32_t a[4], c[4];
        _mm_store_si128(reinterpret_cast<__m128i*>(a), v);
        _mm_store_si128(reinterpret_cast<__m128i*>(c), counts);
        for (int i = 0; i < 4; ++i)
            a[i] >>= (c[i] & 31u);
        return _mm_load_si128(reinterpret_cast<const __m128i*>(a));
    }
};

using NativeCol = Native;

} // inline namespace backend_sse2

#elif defined(REPRO_SIMD_BACKEND_NEON)

inline namespace backend_neon
{

struct Native
{
    using Vec = uint32x4_t;
    static constexpr unsigned kLanes = 4;
    static constexpr SimdBackend kBackend = SimdBackend::Neon;

    static Vec loadu(const std::uint32_t* p) { return vld1q_u32(p); }
    static void storeu(std::uint32_t* p, Vec v) { vst1q_u32(p, v); }
    static Vec broadcast(std::uint32_t x) { return vdupq_n_u32(x); }
    static Vec bxor(Vec a, Vec b) { return veorq_u32(a, b); }
    static Vec band(Vec a, Vec b) { return vandq_u32(a, b); }
    // NEON shifts left by a signed per-lane count; negating it gives
    // the right shift.
    static Vec
    shl(Vec v, Vec counts)
    {
        return vshlq_u32(v, vreinterpretq_s32_u32(counts));
    }
    static Vec
    shr(Vec v, Vec counts)
    {
        return vshlq_u32(v, vnegq_s32(vreinterpretq_s32_u32(counts)));
    }
};

using NativeCol = Native;

} // inline namespace backend_neon

#else

inline namespace backend_scalar
{

/** Plain-C++ emulation so the vector kernels compile (and can be
 *  exercised) on architectures without a dedicated backend. */
struct Native
{
    struct Vec
    {
        std::uint32_t lane[4];
    };
    static constexpr unsigned kLanes = 4;
    static constexpr SimdBackend kBackend = SimdBackend::Scalar;

    static Vec
    loadu(const std::uint32_t* p)
    {
        return {{p[0], p[1], p[2], p[3]}};
    }
    static void
    storeu(std::uint32_t* p, Vec v)
    {
        for (unsigned i = 0; i < kLanes; ++i)
            p[i] = v.lane[i];
    }
    static Vec
    broadcast(std::uint32_t x)
    {
        return {{x, x, x, x}};
    }
    static Vec
    bxor(Vec a, Vec b)
    {
        for (unsigned i = 0; i < kLanes; ++i)
            a.lane[i] ^= b.lane[i];
        return a;
    }
    static Vec
    band(Vec a, Vec b)
    {
        for (unsigned i = 0; i < kLanes; ++i)
            a.lane[i] &= b.lane[i];
        return a;
    }
    static Vec
    shl(Vec v, Vec counts)
    {
        for (unsigned i = 0; i < kLanes; ++i)
            v.lane[i] <<= (counts.lane[i] & 31u);
        return v;
    }
    static Vec
    shr(Vec v, Vec counts)
    {
        for (unsigned i = 0; i < kLanes; ++i)
            v.lane[i] >>= (counts.lane[i] & 31u);
        return v;
    }
};

using NativeCol = Native;

} // inline namespace backend_scalar

#endif

/** The widest lane count the *column-parallel* tier uses; per-entry
 *  history banks are padded to a multiple of this so every backend
 *  can process a bank in whole vectors (core/multi_geom.hh).
 *  Deliberately stays 8 under AVX-512: 16-lane bank padding would
 *  double history memory for geometries that rarely have more than
 *  eight columns, and the AVX-512 dispatch reuses the AVX2 column
 *  kernel instead (core/multi_geom.cc). */
inline constexpr unsigned kMaxSimdLanes = 8;

/** The canonical step width of the stream-packed kernel tier: every
 *  packing (and every backend, including the scalar reference)
 *  schedules records in 16-lane steps, so packed counters do not
 *  depend on which backend executes the schedule. An AVX-512 step is
 *  one 512-bit vector; AVX2 runs the same step as two 256-bit
 *  half-vectors with the read/write phase ordering preserved. */
inline constexpr unsigned kPackLanes = 16;

} // namespace vpred::simd

#endif // DFCM_CORE_SIMD_HH
