/**
 * @file
 * The table arena: the repository's single home for hot-table
 * memory. repro-lint: allow is not needed here — the
 * portability/raw-mmap rule names this file (with trace_io and the
 * trace store) as the only sanctioned callers of the raw page-level
 * allocation APIs.
 *
 * Every hot table in the reproduction — the multi-geometry level-2
 * columns (up to 2^28 x u32 each), the per-entry hashed-history bank,
 * the service SlotMap bucket arrays and the shard spill bank — used
 * to live in std::vector. That is correct but leaves two measurable
 * costs on the floor at the paper's realistic table sizes:
 *
 *   - TLB pressure: a 4 MiB level-2 column spans 1024 4 KiB pages;
 *     an FS R-k probe stream touches them near-uniformly, so at
 *     2^20-entry tables the dTLB miss rate rivals the cache miss
 *     rate. Backing the table with transparent huge pages
 *     (madvise(MADV_HUGEPAGE)) collapses it to two 2 MiB entries.
 *   - NUMA placement: std::vector zero-fills eagerly on the
 *     constructing thread, so a shard built on the main thread has
 *     its tables faulted onto the main thread's node even though the
 *     drain thread owns them forever after. The arena's mmap mode
 *     defers instantiation to the first touch, which is performed by
 *     the owning thread in steady state — the REPRO_SERVICE_SCALING
 *     sweep gets first-touch-correct placement for free.
 *
 * TableBuffer<T> is the vessel: a relocatable, zero-initialized,
 * 64-byte-aligned buffer with a deliberately small std::vector-like
 * surface (resize/assign/fill(0)/data/iteration). Allocations at or
 * above kHugeThresholdBytes come from an anonymous private mapping,
 * aligned to the 2 MiB huge-page boundary by over-allocating and
 * trimming, and hinted with MADV_HUGEPAGE; failure of the hint (THP
 * disabled, old kernel) is silently tolerated — the mapping still
 * works on 4 KiB pages — and failure of mmap itself falls back to
 * the plain allocator. Smaller buffers use 64-byte-aligned operator
 * new. Sanitizer builds default to the plain-new mode so ASan
 * redzones and TSan instrumentation see every table byte
 * (REPRO_ARENA=new|mmap|auto overrides; see docs/api.md).
 *
 * T must be trivially copyable and trivially destructible, with
 * all-bits-zero as its power-on value — the arena zero-fills with
 * pages or memset, never with constructors. The tables stored here
 * (u32 slots, u64 values, the SlotMap's POD bucket) all satisfy
 * this, and a static_assert holds the door.
 */

#ifndef DFCM_CORE_TABLE_ARENA_HH
#define DFCM_CORE_TABLE_ARENA_HH

#include <cstddef>
#include <cstring>
#include <type_traits>
#include <utility>

namespace vpred
{

/** How a TableBuffer's bytes are (to be) provided. */
enum class ArenaBacking
{
    None,  //!< empty buffer, no allocation
    New,   //!< 64-byte-aligned operator new, memset-zeroed eagerly
    Mmap,  //!< anonymous mapping, MADV_HUGEPAGE-hinted, lazy zero pages
};

/** The arena allocation policy (resolved from REPRO_ARENA). */
enum class ArenaMode
{
    Auto,  //!< mmap for big buffers, new for small (sanitizers: new)
    Mmap,  //!< force the mapping path for every eligible buffer
    New,   //!< force plain allocation (the sanitizer-safe mode)
};

namespace table_arena
{

/** Buffers at least this big take the mapping path (in Auto/Mmap
 *  mode): one transparent huge page. Below it the TLB win is nil and
 *  page granularity would waste more than it saves. */
inline constexpr std::size_t kHugeThresholdBytes =
        std::size_t{2} * 1024 * 1024;

/** Alignment every backing guarantees (one cache line). The mapping
 *  path aligns to kHugeThresholdBytes so THP can promote. */
inline constexpr std::size_t kAlignBytes = 64;

/** The process-wide mode: REPRO_ARENA (auto/mmap/new), resolved once
 *  on first use; malformed values are fatal (exit 2). Sanitizer
 *  builds default to New instead of Auto. */
ArenaMode activeMode();

/** The pure planning rule: resolved backing for a @p bytes-sized
 *  allocation under @p mode (None for zero bytes). Exposed so tests
 *  can pin the policy without touching the process environment. */
ArenaBacking planBackingFor(std::size_t bytes, ArenaMode mode);

/** planBackingFor under the active (REPRO_ARENA) mode. */
ArenaBacking planBacking(std::size_t bytes);

/** Allocate @p bytes zeroed bytes under an explicit @p mode; reports
 *  the backing actually used (mmap refusal falls back to New). Never
 *  returns nullptr for nonzero @p bytes — allocation failure is
 *  fatal. */
void* allocateWith(std::size_t bytes, ArenaMode mode,
                   ArenaBacking& backing);

/** allocateWith under the active (REPRO_ARENA) mode. */
void* allocate(std::size_t bytes, ArenaBacking& backing);

/** Release a buffer obtained from allocate(). */
void deallocate(void* p, std::size_t bytes, ArenaBacking backing);

} // namespace table_arena

/**
 * A hot-table buffer: zero-initialized, 64-byte-aligned, relocatable
 * storage for trivially-copyable table slots. Grows like a vector
 * (geometric capacity, contents preserved, new tail zeroed) so the
 * shard spill bank and the SlotMap can live here too.
 */
template <class T>
class TableBuffer
{
    static_assert(std::is_trivially_copyable_v<T>
                          && std::is_trivially_destructible_v<T>,
                  "the arena zero-fills and memcpy-moves its tables");

  public:
    TableBuffer() = default;
    /** @p n zero slots. */
    explicit TableBuffer(std::size_t n) { resize(n); }
    ~TableBuffer() { release(); }

    TableBuffer(TableBuffer&& other) noexcept { steal(other); }
    TableBuffer&
    operator=(TableBuffer&& other) noexcept
    {
        if (this != &other) {
            release();
            steal(other);
        }
        return *this;
    }
    TableBuffer(const TableBuffer&) = delete;
    TableBuffer& operator=(const TableBuffer&) = delete;

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    T* data() { return data_; }
    const T* data() const { return data_; }
    T* begin() { return data_; }
    T* end() { return data_ + size_; }
    const T* begin() const { return data_; }
    const T* end() const { return data_ + size_; }
    T& operator[](std::size_t i) { return data_[i]; }
    const T& operator[](std::size_t i) const { return data_[i]; }

    /** The backing of the current allocation (None when empty). */
    ArenaBacking backing() const { return backing_; }

    /**
     * Pin this buffer to an explicit arena mode instead of the
     * process-wide activeMode(), re-homing the current allocation
     * (contents preserved) if its backing would change. This is how
     * the big-L2 benchmark measures the plain-page std::vector
     * -equivalent baseline and the huge-page arena path head-to-head
     * in one process — activeMode() itself is resolved once and
     * deliberately immutable.
     */
    void
    setArenaMode(ArenaMode m)
    {
        mode_ = m;
        mode_set_ = true;
        if (capacity_ != 0
            && table_arena::planBackingFor(capacity_ * sizeof(T), m)
                       != backing_) {
            // reallocate() ends in release(), which clears size_ for
            // its resize() caller to re-set — restore it here or the
            // re-homed buffer would report empty (and fillZero would
            // silently stop resetting the table).
            const std::size_t n = size_;
            reallocate(capacity_);
            size_ = n;
        }
    }

    /**
     * Grow or shrink to @p n slots. Growth within capacity just
     * extends the view — under the mmap backing the new tail is
     * untouched kernel zero pages, so its first fault lands on the
     * toucher's NUMA node. Growth past capacity reallocates
     * geometrically and memcpy-moves the live prefix. Shrinking
     * keeps the allocation and re-zeroes the abandoned tail so a
     * later regrow still sees power-on state.
     */
    void
    resize(std::size_t n)
    {
        if (n > capacity_) {
            std::size_t cap = capacity_ == 0 ? n : capacity_;
            while (cap < n)
                cap *= 2;
            reallocate(cap);
        } else if (n < size_) {
            std::memset(static_cast<void*>(data_ + n), 0,
                        (size_ - n) * sizeof(T));
        }
        size_ = n;
    }

    /** Discard contents: @p n zero slots (the vector::assign(n, {})
     *  pattern the SlotMap uses). */
    void
    assign(std::size_t n)
    {
        fillZero();
        resize(n);
    }

    /** Zero every live slot in place (power-on reset). */
    void
    fillZero()
    {
        if (size_ != 0)
            std::memset(static_cast<void*>(data_), 0,
                        size_ * sizeof(T));
    }

  private:
    void
    reallocate(std::size_t cap)
    {
        ArenaBacking backing = ArenaBacking::None;
        void* p = table_arena::allocateWith(
                cap * sizeof(T),
                mode_set_ ? mode_ : table_arena::activeMode(), backing);
        if (size_ != 0)
            std::memcpy(p, data_, size_ * sizeof(T));
        release();
        data_ = static_cast<T*>(p);
        capacity_ = cap;
        backing_ = backing;
    }

    void
    release()
    {
        if (data_ != nullptr)
            table_arena::deallocate(data_, capacity_ * sizeof(T),
                                    backing_);
        data_ = nullptr;
        size_ = 0;
        capacity_ = 0;
        backing_ = ArenaBacking::None;
    }

    void
    steal(TableBuffer& other)
    {
        data_ = std::exchange(other.data_, nullptr);
        size_ = std::exchange(other.size_, 0);
        capacity_ = std::exchange(other.capacity_, 0);
        backing_ = std::exchange(other.backing_, ArenaBacking::None);
        mode_ = other.mode_;
        mode_set_ = other.mode_set_;
    }

    T* data_ = nullptr;
    std::size_t size_ = 0;
    std::size_t capacity_ = 0;
    ArenaBacking backing_ = ArenaBacking::None;
    ArenaMode mode_ = ArenaMode::Auto;  //!< only read when mode_set_
    bool mode_set_ = false;             //!< pinned by setArenaMode()
};

} // namespace vpred

#endif // DFCM_CORE_TABLE_ARENA_HH
