/**
 * @file
 * Interface between the MultiGeom{Fcm,Dfcm}Kernel dispatchers and the
 * per-instruction-set vector kernels (multi_geom_simd_<backend>.cc).
 *
 * MgSimdView is a flattened, pointer-only snapshot of one kernel's
 * state: the padded per-entry history bank, the per-column FS R-k
 * parameters as structure-of-arrays (one u32 per lane, padded with
 * inert values), the level-2 table pointers, and the accumulators.
 * The backend translation units — each compiled with its own -m
 * flags — see only this POD and core/simd.hh, so adding an
 * instruction set never touches the kernel classes.
 *
 * All u32 lane arithmetic is exact with respect to the 64-bit scalar
 * reference because every quantity is bounded: inserted values are
 * masked to value_bits <= 32, hashes to the <= 28-bit level-2 index
 * width, and fold/shift distances to < 32 (see the proof sketch in
 * multi_geom_simd_impl.hh). Bit-identity of every backend against
 * the scalar path is asserted over the full Figure 10 grid in
 * tests/simd_kernel_test.cc.
 */

#ifndef DFCM_CORE_MULTI_GEOM_SIMD_HH
#define DFCM_CORE_MULTI_GEOM_SIMD_HH

#include <cstdint>
#include <span>

#include "core/types.hh"

namespace vpred::detail
{

/** Flattened multi-geometry kernel state for one runTrace() call. */
struct MgSimdView
{
    std::uint32_t* hists;    //!< l1Entries x padded_n history bank
    std::size_t n;           //!< real column count
    std::size_t padded_n;    //!< bank stride, multiple of kMaxSimdLanes

    std::uint64_t l1_mask;
    std::uint64_t value_mask;
    std::uint64_t stride_mask;  //!< DFCM stored-stride mask
    unsigned stride_bits;       //!< DFCM stored-stride width
    unsigned chunks;            //!< shared worst-case fold chunk count

    /** Level-2 table base pointer per real column. */
    std::uint32_t* const* l2;

    // Per-lane FS R-k parameters, padded_n entries each; the padding
    // lanes hold inert values (shift 0, fold_bits 1, masks 0).
    const std::uint32_t* shifts;
    const std::uint32_t* fold_bits;
    const std::uint32_t* fold_masks;
    const std::uint32_t* index_masks;

    std::uint64_t* correct;  //!< n correct-prediction counters
    Value* last;             //!< DFCM: last value per level-1 entry
    bool dfcm = false;       //!< DFCM rule (vs. FCM)
    bool widen = false;      //!< DFCM: stride_bits < value_bits

    /**
     * Columns worth software-prefetching: indices of the columns
     * whose level-2 table exceeds the cache-resident threshold
     * (kPrefetchMinL2Bytes in multi_geom.cc). Small tables live in
     * cache after warm-up, so prefetching them is pure issue
     * overhead; big tables miss on nearly every probe.
     */
    const std::uint32_t* prefetch_cols = nullptr;
    std::size_t n_prefetch = 0;

    /**
     * The gather-tier column split (MultiGeomKernelBase's plan, from
     * l2_bits >= REPRO_GATHER_COLUMNS): gather_cols are probed W
     * records at a time via vector gather/scatter by runMgGather*,
     * scalar_cols keep the per-record scalar probe loop. Disjoint and
     * together covering all n real columns; the column kernels ignore
     * them, and the gather entry points are only dispatched when
     * n_gather > 0.
     */
    const std::uint32_t* gather_cols = nullptr;
    std::size_t n_gather = 0;
    const std::uint32_t* scalar_cols = nullptr;
    std::size_t n_scalar = 0;
};

/**
 * Flattened kernel state plus a canonical stream-packed schedule for
 * one feedTracePacked() call (see MultiGeomKernelBase::packTrace).
 *
 * The schedule is a sequence of @ref steps 16-lane steps
 * (simd::kPackLanes). Every lane of a step carries one record from a
 * *distinct* level-1 entry, so the per-lane history advances never
 * collide; level-2 probe indices may collide, and the contract is
 * per-(step, column): all lanes read (hash gather, table gather,
 * compare) before any lane writes, and stores land in ascending lane
 * order. Inactive lanes hold entry 0 / value 0 so unmasked gathers
 * stay in bounds; their writes and counter contributions are masked
 * out via @ref step_active.
 */
struct MgPackedView
{
    std::uint32_t* hists;    //!< l1Entries x padded_n history bank
    std::size_t n;           //!< real column count
    std::size_t padded_n;    //!< bank stride, multiple of kMaxSimdLanes

    std::uint32_t value_mask;   //!< value mask, value_bits <= 32
    std::uint32_t stride_mask;  //!< DFCM stored-stride mask
    unsigned stride_bits;       //!< DFCM stored-stride width
    unsigned chunks;            //!< shared worst-case fold chunk count

    /** Level-2 table base pointer per real column. */
    std::uint32_t* const* l2;

    // Per-column FS R-k parameters (indexed by real column c < n;
    // same padded arrays the column kernels use).
    const std::uint32_t* shifts;
    const std::uint32_t* fold_bits;
    const std::uint32_t* fold_masks;
    const std::uint32_t* index_masks;

    std::uint64_t* correct;  //!< n correct-prediction counters
    Value* last;             //!< DFCM: last value per level-1 entry
    bool dfcm = false;       //!< DFCM rule (vs. FCM)
    bool widen = false;      //!< DFCM: stride_bits < value_bits

    /** Level-1 entry per lane, steps x kPackLanes (0 when inactive). */
    const std::uint32_t* lane_entry;
    /** Masked record value per lane, steps x kPackLanes. */
    const std::uint32_t* lane_value;
    /** Active-lane bitmask per step. */
    const std::uint16_t* step_active;
    /** Lanes whose raw 64-bit value fits value_mask (subset of
     *  step_active); only these may count a correct prediction. */
    const std::uint16_t* step_fits;
    std::size_t steps;
};

// One entry point per compiled backend; each runs the shared kernel
// template from multi_geom_simd_impl.hh over its instruction set.
// The REPRO_SIMD_HAS_* macros are defined by src/core/CMakeLists.txt
// for exactly the translation units it adds.
#if defined(REPRO_SIMD_HAS_SSE2)
void runMgColumnsSse2(const MgSimdView& view,
                      std::span<const TraceRecord> trace);
#endif
#if defined(REPRO_SIMD_HAS_AVX2)
void runMgColumnsAvx2(const MgSimdView& view,
                      std::span<const TraceRecord> trace);
void runMgPackedAvx2(const MgPackedView& view);
void runMgGatherAvx2(const MgSimdView& view,
                     std::span<const TraceRecord> trace);
#endif
#if defined(REPRO_SIMD_HAS_AVX512)
void runMgPackedAvx512(const MgPackedView& view);
void runMgGatherAvx512(const MgSimdView& view,
                       std::span<const TraceRecord> trace);
#endif
#if defined(REPRO_SIMD_HAS_NEON)
void runMgColumnsNeon(const MgSimdView& view,
                      std::span<const TraceRecord> trace);
#endif

} // namespace vpred::detail

#endif // DFCM_CORE_MULTI_GEOM_SIMD_HH
