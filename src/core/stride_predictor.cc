#include "core/stride_predictor.hh"

#include <cassert>
#include <sstream>

#include "core/trace_kernel.hh"

namespace vpred
{

StridePredictor::StridePredictor(const Config& config)
    : cfg_(config), index_mask_(maskBits(config.table_bits)),
      value_mask_(maskBits(config.value_bits)),
      counter_max_((1u << config.counter_bits) - 1),
      table_(std::size_t{1} << config.table_bits)
{
    assert(config.table_bits <= 28);
    assert(config.value_bits >= 1 && config.value_bits <= 64);
    assert(config.counter_bits >= 1 && config.counter_bits <= 16);
}

StridePredictor::StridePredictor(unsigned table_bits, unsigned value_bits)
    : StridePredictor(Config{.table_bits = table_bits,
                             .value_bits = value_bits})
{
}

Value
StridePredictor::predict(Pc pc) const
{
    const Entry& e = table_[index(pc)];
    return (e.last + e.stride) & value_mask_;
}

void
StridePredictor::update(Pc pc, Value actual)
{
    Entry& e = table_[index(pc)];
    actual &= value_mask_;

    const bool correct = ((e.last + e.stride) & value_mask_) == actual;

    // Replacement decision on the pre-training counter: a saturated
    // entry keeps its stride across one misprediction.
    if (e.confidence < counter_max_)
        e.stride = (actual - e.last) & value_mask_;

    if (correct) {
        e.confidence = std::min(e.confidence + cfg_.counter_inc,
                                counter_max_);
    } else {
        e.confidence = e.confidence < cfg_.counter_dec
            ? 0 : e.confidence - cfg_.counter_dec;
    }

    e.last = actual;
}

bool
StridePredictor::predictAndUpdate(Pc pc, Value actual)
{
    // Fused predict + update: one table lookup and one prediction
    // computation per record. The reported outcome compares the raw
    // actual (like the default composition); the confidence training
    // step compares the masked actual (like update()). The two only
    // differ for values wider than value_bits.
    Entry& e = table_[index(pc)];
    const Value predicted = (e.last + e.stride) & value_mask_;
    const bool correct = predicted == actual;

    actual &= value_mask_;
    if (e.confidence < counter_max_)
        e.stride = (actual - e.last) & value_mask_;

    if (predicted == actual) {
        e.confidence = std::min(e.confidence + cfg_.counter_inc,
                                counter_max_);
    } else {
        e.confidence = e.confidence < cfg_.counter_dec
            ? 0 : e.confidence - cfg_.counter_dec;
    }

    e.last = actual;
    return correct;
}

PredictorStats
StridePredictor::runTraceSpan(std::span<const TraceRecord> trace)
{
    PredictorStats stats;
    runTraceKernel(*this, trace, stats);
    return stats;
}

std::uint64_t
StridePredictor::storageBits() const
{
    const std::uint64_t per_entry = 2ull * cfg_.value_bits
        + (cfg_.count_counter_bits ? cfg_.counter_bits : 0);
    return std::uint64_t{table_.size()} * per_entry;
}

std::string
StridePredictor::name() const
{
    std::ostringstream os;
    os << "stride(t=" << cfg_.table_bits << ")";
    return os.str();
}

unsigned
StridePredictor::confidenceAt(Pc pc) const
{
    return table_[index(pc)].confidence;
}

} // namespace vpred
