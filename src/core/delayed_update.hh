/**
 * @file
 * Delayed-update evaluation model, Section 4.5 / Figure 17 of the
 * paper.
 */

#ifndef DFCM_CORE_DELAYED_UPDATE_HH
#define DFCM_CORE_DELAYED_UPDATE_HH

#include <deque>
#include <memory>

#include "core/value_predictor.hh"

namespace vpred
{

/**
 * Wraps a predictor so that the table update for a prediction is
 * applied only after @c delay further predictions have been made.
 * If the same static instruction occurs twice within the delay
 * window, the second prediction is therefore based on stale history,
 * exactly as in a real pipeline where the update happens at commit.
 *
 * A delay of 0 reproduces the immediate predict-then-update
 * discipline.
 *
 * @note The wrapper derives correctness from the inner predictor's
 * predict(); it therefore composes with any single-prediction
 * predictor but not with PerfectHybridPredictor (whose correctness
 * is oracle-defined). Figure 17 only needs FCM and DFCM.
 */
class DelayedUpdatePredictor : public ValuePredictor
{
  public:
    DelayedUpdatePredictor(std::unique_ptr<ValuePredictor> inner,
                           unsigned delay);

    Value predict(Pc pc) const override;
    void update(Pc pc, Value actual) override;
    bool predictAndUpdate(Pc pc, Value actual) override;
    std::uint64_t storageBits() const override;
    std::string name() const override;

    /** Apply all queued updates (call at end of trace if the exact
     *  final table state matters). */
    void drain();

    unsigned delay() const { return delay_; }

  private:
    struct Pending
    {
        Pc pc;
        Value actual;
    };

    std::unique_ptr<ValuePredictor> inner_;
    unsigned delay_;
    std::deque<Pending> queue_;
};

} // namespace vpred

#endif // DFCM_CORE_DELAYED_UPDATE_HH
