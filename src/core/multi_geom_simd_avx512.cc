/**
 * @file
 * AVX-512 instantiation of the *stream-packed* multi-geometry kernel:
 * one 512-bit vector carries a whole 16-lane step, vpgatherdd /
 * vpscatterdd cover the level-2 probes and history writebacks, and
 * the compare collapses to a single vpcmpeqd mask. Compiled with
 * -mavx512f by src/core/CMakeLists.txt — and only when the AVX2 TU is
 * also present, because the column-parallel tier dispatches AVX-512
 * to the AVX2 column kernel (the history banks stay 8-lane padded;
 * see core/multi_geom.cc). Only ever *called* after the runtime CPUID
 * probe in core/cpu_features.cc says the machine executes AVX-512F.
 */

#define REPRO_SIMD_TU_AVX512 1

#include "core/multi_geom_simd_impl.hh"

namespace vpred::detail
{

static_assert(simd::Native::kBackend == SimdBackend::Avx512,
              "simd.hh resolved the wrong backend for this TU");
static_assert(simd::Native::kLanes == simd::kPackLanes,
              "an AVX-512 step is exactly one vector");

void
runMgPackedAvx512(const MgPackedView& view)
{
    runMgPackedAll<simd::Native>(view);
}

} // namespace vpred::detail
