/**
 * @file
 * AVX-512 instantiation of the *stream-packed* and *gather column*
 * multi-geometry kernels: one 512-bit vector carries a whole 16-lane
 * step (or a 16-record probe batch), vpgatherdd / vpscatterdd cover
 * the level-2 probes and history writebacks, and the compare
 * collapses to a single vpcmpeqd mask. Compiled with -mavx512f by
 * src/core/CMakeLists.txt — and only when the AVX2 TU is also
 * present, because the plain column-parallel tier dispatches AVX-512
 * to the AVX2 column kernel (the history banks stay 8-lane padded;
 * see core/multi_geom.cc). Only ever *called* after the runtime CPUID
 * probe in core/cpu_features.cc says the machine executes AVX-512F.
 */

#define REPRO_SIMD_TU_AVX512 1

#include "core/multi_geom_simd_impl.hh"

namespace vpred::detail
{

static_assert(simd::Native::kBackend == SimdBackend::Avx512,
              "simd.hh resolved the wrong backend for this TU");
static_assert(simd::Native::kLanes == simd::kPackLanes,
              "an AVX-512 step is exactly one vector");

void
runMgPackedAvx512(const MgPackedView& view)
{
    runMgPackedAll<simd::Native>(view);
}

void
runMgGatherAvx512(const MgSimdView& view,
                  std::span<const TraceRecord> trace)
{
    // Gather column tier: 16-record batches per big level-2 column
    // through 512-bit vpgatherdd/vpscatterdd, while the history
    // advance stays on the 8-lane NativeCol to match the bank
    // padding (kMaxSimdLanes).
    static_assert(simd::NativeCol::kLanes == simd::kMaxSimdLanes,
                  "bank advance width must match the bank padding");
    runMgGatherAll<simd::Native, simd::NativeCol>(view, trace);
}

} // namespace vpred::detail
