#include "core/predictor_factory.hh"

#include <stdexcept>

#include "core/delayed_update.hh"
#include "core/dfcm_predictor.hh"
#include "core/fcm_predictor.hh"
#include "core/hybrid_predictor.hh"
#include "core/last_value_predictor.hh"
#include "core/stride_predictor.hh"
#include "core/two_delta_predictor.hh"

namespace vpred
{

namespace
{

std::unique_ptr<ValuePredictor>
makeFcm(const PredictorConfig& c)
{
    FcmConfig fc;
    fc.l1_bits = c.l1_bits;
    fc.l2_bits = c.l2_bits;
    fc.value_bits = c.value_bits;
    if (c.hash_shift != 5)
        fc.hash = ShiftFoldHash::fsRk(c.l2_bits, c.hash_shift);
    return std::make_unique<FcmPredictor>(fc);
}

std::unique_ptr<ValuePredictor>
makeDfcm(const PredictorConfig& c)
{
    DfcmConfig dc;
    dc.l1_bits = c.l1_bits;
    dc.l2_bits = c.l2_bits;
    dc.value_bits = c.value_bits;
    dc.stride_bits = c.stride_bits;
    if (c.hash_shift != 5)
        dc.hash = ShiftFoldHash::fsRk(c.l2_bits, c.hash_shift);
    return std::make_unique<DfcmPredictor>(dc);
}

std::unique_ptr<ValuePredictor>
makeStride(const PredictorConfig& c)
{
    return std::make_unique<StridePredictor>(c.l1_bits, c.value_bits);
}

std::unique_ptr<ValuePredictor>
makeBase(const PredictorConfig& c)
{
    switch (c.kind) {
      case PredictorKind::Lvp:
        return std::make_unique<LastValuePredictor>(c.l1_bits,
                                                    c.value_bits);
      case PredictorKind::Stride:
        return makeStride(c);
      case PredictorKind::TwoDelta:
        return std::make_unique<TwoDeltaPredictor>(c.l1_bits,
                                                   c.value_bits);
      case PredictorKind::Fcm:
        return makeFcm(c);
      case PredictorKind::Dfcm:
        return makeDfcm(c);
      case PredictorKind::HybridStrideFcm:
        return std::make_unique<CounterHybridPredictor>(
                makeStride(c), makeFcm(c),
                CounterHybridPredictor::Config{.meta_bits = c.l1_bits});
      case PredictorKind::HybridStrideDfcm:
        return std::make_unique<CounterHybridPredictor>(
                makeStride(c), makeDfcm(c),
                CounterHybridPredictor::Config{.meta_bits = c.l1_bits});
      case PredictorKind::PerfectStrideFcm:
        return std::make_unique<PerfectHybridPredictor>(makeStride(c),
                                                        makeFcm(c));
      case PredictorKind::PerfectStrideDfcm:
        return std::make_unique<PerfectHybridPredictor>(makeStride(c),
                                                        makeDfcm(c));
    }
    throw std::invalid_argument("unknown PredictorKind");
}

} // namespace

std::unique_ptr<ValuePredictor>
makePredictor(const PredictorConfig& config)
{
    auto p = makeBase(config);
    if (config.update_delay > 0) {
        p = std::make_unique<DelayedUpdatePredictor>(std::move(p),
                                                     config.update_delay);
    }
    return p;
}

std::string
kindName(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::Lvp: return "lvp";
      case PredictorKind::Stride: return "stride";
      case PredictorKind::TwoDelta: return "2delta";
      case PredictorKind::Fcm: return "fcm";
      case PredictorKind::Dfcm: return "dfcm";
      case PredictorKind::HybridStrideFcm: return "hybrid-stride+fcm";
      case PredictorKind::HybridStrideDfcm: return "hybrid-stride+dfcm";
      case PredictorKind::PerfectStrideFcm: return "perfect-stride+fcm";
      case PredictorKind::PerfectStrideDfcm: return "perfect-stride+dfcm";
    }
    return "unknown";
}

} // namespace vpred
