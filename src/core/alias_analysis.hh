/**
 * @file
 * Aliasing taxonomy for two-level context predictors, Section 4.2 /
 * Figures 12-14 of the paper.
 *
 * Every prediction is put into exactly one of five categories, in
 * this priority order (only the first matching rule counts):
 *
 *  - l1: some value in the history used to index the level-2 table
 *    was produced by a different static instruction (level-1 table
 *    conflict).
 *  - hash: the complete (unhashed) history recorded at the last
 *    update of the level-2 entry differs from the current history —
 *    two different histories collided in the hash.
 *  - l2_priv: a private per-level-1-entry level-2 table would have
 *    produced a different prediction than the shared global one.
 *  - l2_pc: the level-2 entry was last written by a different static
 *    instruction (but with an identical history — constructive or
 *    neutral sharing).
 *  - none: no aliasing detected.
 */

#ifndef DFCM_CORE_ALIAS_ANALYSIS_HH
#define DFCM_CORE_ALIAS_ANALYSIS_HH

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/fcm_predictor.hh"
#include "core/stats.hh"
#include "core/types.hh"

namespace vpred
{

/** The five aliasing categories, in classification priority order. */
enum class AliasType : unsigned
{
    L1 = 0,
    Hash,
    L2Priv,
    L2Pc,
    None,
};

/** Number of AliasType categories. */
constexpr std::size_t kAliasTypeCount = 5;

/** Display name used in the paper's figures ("l1", "hash", ...). */
const char* aliasTypeName(AliasType type);

/** Per-category prediction statistics. */
struct AliasBreakdown
{
    std::array<PredictorStats, kAliasTypeCount> per_type;

    const PredictorStats&
    operator[](AliasType t) const
    {
        return per_type[static_cast<unsigned>(t)];
    }

    /** Aggregate over all categories. */
    PredictorStats total() const;

    /** Fraction of all predictions in category @p t (Figure 13). */
    double fractionOfPredictions(AliasType t) const;

    /** Fraction of all predictions that are *mispredictions* in
     *  category @p t (Figure 14: bar heights sum to the global
     *  misprediction rate). */
    double fractionWrong(AliasType t) const;

    AliasBreakdown& operator+=(const AliasBreakdown& o);
};

/**
 * An FCM or DFCM predictor instrumented with the shadow state needed
 * for the aliasing taxonomy: full unhashed histories and writer PCs
 * in the level-1 shadow, recorded histories and writer PCs per
 * level-2 entry, and sparse private per-level-1-entry level-2
 * tables.
 *
 * The functional tables behave exactly like FcmPredictor /
 * DfcmPredictor (identical predictions); the shadow state is
 * observation-only.
 */
class AliasAnalyzer
{
  public:
    /**
     * @param config Geometry/hash of the predictor to instrument.
     * @param differential False = FCM (value histories), true = DFCM
     *        (difference histories + last value).
     */
    AliasAnalyzer(const FcmConfig& config, bool differential);

    /** Classify-then-update one trace record. */
    void step(Pc pc, Value actual);

    /** Run a whole trace view (ValueTrace converts implicitly). */
    AliasBreakdown run(std::span<const TraceRecord> trace);

    /** Statistics accumulated so far. */
    const AliasBreakdown& breakdown() const { return breakdown_; }

    /** Classification the next step(pc, ...) would assign
     *  (inspection hook for tests). */
    AliasType classify(Pc pc) const;

    /** The value the functional tables would predict for @p pc. */
    Value predictValue(Pc pc) const;

    bool differential() const { return differential_; }
    unsigned order() const { return order_; }

  private:
    struct L1Shadow
    {
        std::vector<Value> history;  //!< oldest..newest, size = order
        std::vector<Pc> writers;     //!< producer of each element
        Value last = 0;              //!< DFCM last value
    };

    struct L2Shadow
    {
        std::vector<Value> history;  //!< history at last update
        Pc writer;                   //!< PC of last updater
    };

    std::uint64_t hashOf(const std::vector<Value>& history) const;
    std::uint64_t privKey(std::size_t l1_idx, std::uint64_t l2_idx) const;

    FcmConfig cfg_;
    bool differential_;
    ShiftFoldHash hash_;
    unsigned order_;
    std::uint64_t l1_mask_;
    std::uint64_t value_mask_;
    static constexpr Pc kNoPc = ~Pc{0};

    std::vector<L1Shadow> l1_;
    std::vector<Value> l2_;          //!< functional level-2 table
    std::vector<L2Shadow> l2_shadow_;
    std::unordered_map<std::uint64_t, Value> private_l2_;
    AliasBreakdown breakdown_;
};

} // namespace vpred

#endif // DFCM_CORE_ALIAS_ANALYSIS_HH
