/**
 * @file
 * Fundamental types shared by all value-prediction components.
 *
 * The paper (Goeman et al., "Differential FCM", HPCA 2001) predicts
 * 32-bit MIPS register values. All predictors in this library carry
 * values in 64-bit integers but operate modulo a configurable value
 * width (32 bits by default) so that stride arithmetic wraps exactly
 * like the hardware the paper models.
 */

#ifndef DFCM_CORE_TYPES_HH
#define DFCM_CORE_TYPES_HH

#include <cstdint>
#include <vector>

namespace vpred
{

/** A register value as seen by the predictor. */
using Value = std::uint64_t;

/**
 * A static-instruction identifier. The MiniRISC tracer emits the
 * instruction *index* (pc / 4); synthetic generators may use any
 * dense identifier. Predictors index their tables with the low bits.
 */
using Pc = std::uint64_t;

/**
 * Return a mask with the low @p bits set.
 *
 * @param bits Number of low bits, 0..64 inclusive.
 */
constexpr std::uint64_t
maskBits(unsigned bits)
{
    return bits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << bits) - 1);
}

/** True iff @p x is a power of two (zero is not). */
constexpr bool
isPowerOfTwo(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/**
 * Sign-extend the low @p bits of @p v to a full 64-bit two's
 * complement value. Used when the DFCM stores narrowed strides
 * (Section 4.4 of the paper).
 */
constexpr std::uint64_t
signExtend(std::uint64_t v, unsigned bits)
{
    if (bits == 0 || bits >= 64)
        return v;
    const std::uint64_t m = std::uint64_t{1} << (bits - 1);
    v &= maskBits(bits);
    return (v ^ m) - m;
}

/**
 * One element of a value trace: a static instruction identifier and
 * the value it produced. This is the only information a trace-driven
 * value-predictor evaluation needs (Section 4 of the paper).
 */
struct TraceRecord
{
    Pc pc;
    Value value;

    bool operator==(const TraceRecord&) const = default;
};

/** A complete value trace for one workload. */
using ValueTrace = std::vector<TraceRecord>;

} // namespace vpred

#endif // DFCM_CORE_TYPES_HH
