/**
 * @file
 * Hybrid (component + meta-predictor) value predictors, Section 4.3
 * / Figures 15 and 16 of the paper.
 */

#ifndef DFCM_CORE_HYBRID_PREDICTOR_HH
#define DFCM_CORE_HYBRID_PREDICTOR_HH

#include <memory>
#include <string>
#include <vector>

#include "core/value_predictor.hh"

namespace vpred
{

/**
 * Hybrid of two component predictors with a *perfect*
 * meta-predictor: the hybrid's prediction counts as correct iff
 * either component is correct. This is the upper bound the paper
 * compares the DFCM against ("STRIDE+FCM" and "STRIDE+DFCM" in
 * Figure 16); it cannot be built in hardware but bounds every real
 * selector.
 *
 * Both components are always updated with the correct value, exactly
 * like in the paper's hybrid organization.
 */
class PerfectHybridPredictor : public ValuePredictor
{
  public:
    /**
     * @param first First component (e.g. the stride predictor).
     * @param second Second component (e.g. the FCM).
     * @param meta_bits_per_entry Storage charged for the meta table
     *        per first-component entry (0 for the paper's perfect
     *        oracle, which needs no table).
     */
    PerfectHybridPredictor(std::unique_ptr<ValuePredictor> first,
                           std::unique_ptr<ValuePredictor> second);

    /** predict() returns the first component's prediction; accuracy
     *  accounting must go through predictAndUpdate(). */
    Value predict(Pc pc) const override;
    void update(Pc pc, Value actual) override;
    bool predictAndUpdate(Pc pc, Value actual) override;
    std::uint64_t storageBits() const override;
    std::string name() const override;

  private:
    std::unique_ptr<ValuePredictor> first_;
    std::unique_ptr<ValuePredictor> second_;
};

/**
 * Hybrid of two components with a realizable meta-predictor: a table
 * of saturating counters indexed by the instruction identifier
 * chooses the component (Figure 15). The counter trains toward
 * whichever component was correct; on a tie nothing changes.
 */
class CounterHybridPredictor : public ValuePredictor
{
  public:
    struct Config
    {
        unsigned meta_bits = 16;     //!< log2(#meta-table entries)
        unsigned counter_bits = 2;   //!< chooser counter width
    };

    CounterHybridPredictor(std::unique_ptr<ValuePredictor> first,
                           std::unique_ptr<ValuePredictor> second,
                           const Config& config);

    Value predict(Pc pc) const override;
    void update(Pc pc, Value actual) override;
    bool predictAndUpdate(Pc pc, Value actual) override;
    std::uint64_t storageBits() const override;
    std::string name() const override;

    /** True iff the chooser currently selects the first component
     *  for @p pc. */
    bool choosesFirst(Pc pc) const;

  private:
    std::unique_ptr<ValuePredictor> first_;
    std::unique_ptr<ValuePredictor> second_;
    Config cfg_;
    std::uint64_t meta_mask_;
    unsigned counter_max_;
    unsigned counter_init_;
    std::vector<unsigned> meta_;  //!< >= threshold selects first_
};

} // namespace vpred

#endif // DFCM_CORE_HYBRID_PREDICTOR_HH
