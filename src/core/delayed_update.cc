#include "core/delayed_update.hh"

#include <cassert>
#include <sstream>

namespace vpred
{

DelayedUpdatePredictor::DelayedUpdatePredictor(
        std::unique_ptr<ValuePredictor> inner, unsigned delay)
    : inner_(std::move(inner)), delay_(delay)
{
    assert(inner_);
}

Value
DelayedUpdatePredictor::predict(Pc pc) const
{
    return inner_->predict(pc);
}

void
DelayedUpdatePredictor::update(Pc pc, Value actual)
{
    queue_.push_back({pc, actual});
    // An entry leaves the queue after `delay_` further predictions;
    // queueing then immediately releasing implements delay 0.
    while (queue_.size() > delay_) {
        const Pending p = queue_.front();
        queue_.pop_front();
        inner_->update(p.pc, p.actual);
    }
}

bool
DelayedUpdatePredictor::predictAndUpdate(Pc pc, Value actual)
{
    const bool correct = inner_->predict(pc) == actual;
    update(pc, actual);
    return correct;
}

void
DelayedUpdatePredictor::drain()
{
    while (!queue_.empty()) {
        const Pending p = queue_.front();
        queue_.pop_front();
        inner_->update(p.pc, p.actual);
    }
}

std::uint64_t
DelayedUpdatePredictor::storageBits() const
{
    return inner_->storageBits();
}

std::string
DelayedUpdatePredictor::name() const
{
    std::ostringstream os;
    os << "delayed(" << delay_ << ")[" << inner_->name() << "]";
    return os.str();
}

} // namespace vpred
