/**
 * @file
 * Two-delta stride predictor (Eickemeyer and Vassiliadis), described
 * in Section 2.2 of the paper as the classic alternative to the
 * confidence-guarded stride predictor. Included as an extra baseline.
 */

#ifndef DFCM_CORE_TWO_DELTA_PREDICTOR_HH
#define DFCM_CORE_TWO_DELTA_PREDICTOR_HH

#include <vector>

#include "core/value_predictor.hh"

namespace vpred
{

/**
 * Two-delta stride predictor.
 *
 * Per entry: last value and two strides s1 and s2. Predictions use
 * s1. On update the new stride (actual - last) is always stored in
 * s2, and promoted to s1 only when it equals the previous s2, i.e.
 * when the same stride occurred twice in a row. A one-off stride
 * break (loop-control reset) therefore causes a single
 * misprediction.
 */
class TwoDeltaPredictor : public ValuePredictor
{
  public:
    explicit TwoDeltaPredictor(unsigned table_bits,
                               unsigned value_bits = 32);

    Value predict(Pc pc) const override;
    void update(Pc pc, Value actual) override;
    bool predictAndUpdate(Pc pc, Value actual) override;
    PredictorStats runTraceSpan(std::span<const TraceRecord>) override;
    std::uint64_t storageBits() const override;
    std::string name() const override;

    std::size_t entries() const { return table_.size(); }

  private:
    struct Entry
    {
        Value last = 0;
        Value s1 = 0;
        Value s2 = 0;
    };

    std::size_t index(Pc pc) const { return pc & index_mask_; }

    unsigned table_bits_;
    unsigned value_bits_;
    std::uint64_t index_mask_;
    std::uint64_t value_mask_;
    std::vector<Entry> table_;
};

} // namespace vpred

#endif // DFCM_CORE_TWO_DELTA_PREDICTOR_HH
