/**
 * @file
 * Abstract interface for trace-driven value predictors.
 *
 * The paper evaluates predictors in isolation on instruction-result
 * traces (Section 4): for every eligible dynamic instruction the
 * predictor first produces a prediction and is then updated with the
 * architecturally-correct value. Accuracy is the fraction of correct
 * predictions; no confidence gating is applied to the headline
 * numbers.
 */

#ifndef DFCM_CORE_VALUE_PREDICTOR_HH
#define DFCM_CORE_VALUE_PREDICTOR_HH

#include <cstdint>
#include <span>
#include <string>

#include "core/stats.hh"
#include "core/types.hh"

namespace vpred
{

/**
 * A value predictor evaluated in the paper's predict-then-update
 * trace discipline.
 *
 * Implementations must keep predict() free of side effects: all
 * table state changes happen in update(). This allows wrappers (the
 * delayed-update model, the aliasing instrumentation) to interleave
 * predictions and updates arbitrarily.
 */
class ValuePredictor
{
  public:
    virtual ~ValuePredictor() = default;

    /**
     * Predict the next value the instruction at @p pc will produce.
     * Must not modify predictor state.
     */
    virtual Value predict(Pc pc) const = 0;

    /**
     * Train the predictor with the actual outcome @p actual of the
     * instruction at @p pc.
     */
    virtual void update(Pc pc, Value actual) = 0;

    /**
     * Perform one trace step: predict, check, update.
     *
     * The default implementation composes predict() and update().
     * Predictors whose correctness cannot be expressed through a
     * single predicted value (e.g. the perfect-metapredictor hybrid
     * of Figure 16) override this.
     *
     * @return True iff the prediction was correct.
     */
    virtual bool
    predictAndUpdate(Pc pc, Value actual)
    {
        const bool correct = predict(pc) == actual;
        update(pc, actual);
        return correct;
    }

    /**
     * Run this predictor over a whole trace span in the
     * predict-then-update discipline.
     *
     * The default walks the trace through the virtual
     * predictAndUpdate — correct for every predictor, including
     * wrappers. The hot table-based families (LVP, stride,
     * two-delta, FCM, DFCM) override this with a dispatch into the
     * devirtualized runTraceKernel (core/trace_kernel.hh), which is
     * behavior-identical but pays one statically-resolved call per
     * record instead of two virtual ones.
     */
    virtual PredictorStats
    runTraceSpan(std::span<const TraceRecord> trace)
    {
        PredictorStats stats;
        for (const TraceRecord& rec : trace)
            stats.record(predictAndUpdate(rec.pc, rec.value));
        return stats;
    }

    /**
     * Total storage in bits, using the accounting model documented
     * in DESIGN.md Section 5 (the quantity on the x axes of
     * Figures 3 and 11).
     */
    virtual std::uint64_t storageBits() const = 0;

    /** Short human-readable name, e.g. "dfcm(l1=16,l2=12)". */
    virtual std::string name() const = 0;

    /** Storage in Kbit as plotted in the paper. */
    double
    storageKbit() const
    {
        return static_cast<double>(storageBits()) / 1024.0;
    }
};

} // namespace vpred

#endif // DFCM_CORE_VALUE_PREDICTOR_HH
