/**
 * @file
 * Checked environment-variable parsing with loud failure.
 *
 * Every REPRO_* knob used to have its own ad-hoc reader, and the
 * three oldest (REPRO_TRACE_SCALE, REPRO_BATCH_SWEEP, REPRO_SIMD)
 * predated the parse_util.hh migration: a typo like
 * REPRO_TRACE_SCALE=0.5x or REPRO_BATCH_SWEEP=fales silently fell
 * back to the default, so a run you believed was scaled or batched
 * differently was not. That failure mode is worse than a crash — the
 * numbers look plausible and land in results/.
 *
 * These helpers make misconfiguration fatal: an unset (or empty)
 * variable selects the documented default, a well-formed value in
 * range is used, and anything else prints one unambiguous line to
 * stderr and exits with status 2 (the repo-wide usage-error code).
 * Parsing goes through core/parse_util.hh, so trailing garbage and
 * out-of-range values are rejected, never truncated or clamped.
 */

#ifndef DFCM_CORE_ENV_UTIL_HH
#define DFCM_CORE_ENV_UTIL_HH

#include <cctype>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>

#include "core/parse_util.hh"

namespace vpred
{

/**
 * Report a malformed environment value and exit(2). Never returns;
 * the message names the variable, the offending value and what a
 * valid value looks like, so the fix is obvious from the one line.
 */
[[noreturn]] inline void
envUsageError(const char* var, std::string_view value,
              std::string_view expected)
{
    std::cerr << "error: " << var << "='" << value
              << "' is invalid (expected " << expected << ")\n";
    std::exit(2);
}

/** Raw value of @p var; nullopt when unset or empty (empty means
 *  "use the default" for every REPRO_* knob). */
inline std::optional<std::string>
envRaw(const char* var)
{
    const char* v = std::getenv(var);
    if (v == nullptr || *v == '\0')
        return std::nullopt;
    return std::string(v);
}

/**
 * Finite double from @p var in [@p min_value, @p max_value], or
 * @p fallback when unset. Malformed or out-of-range values are fatal
 * (envUsageError).
 */
inline double
envDoubleOr(const char* var, double fallback, double min_value,
            double max_value)
{
    const std::optional<std::string> raw = envRaw(var);
    if (!raw)
        return fallback;
    const std::optional<double> v = parseDouble(*raw);
    if (!v || !(*v >= min_value) || !(*v <= max_value)) {
        envUsageError(var, *raw,
                      "a number in [" + std::to_string(min_value) + ", "
                              + std::to_string(max_value) + "]");
    }
    return *v;
}

/**
 * Unsigned integer from @p var in [@p min_value, @p max_value], or
 * @p fallback when unset. Malformed (including negative) or
 * out-of-range values are fatal.
 */
inline unsigned long long
envUIntOr(const char* var, unsigned long long fallback,
          unsigned long long min_value, unsigned long long max_value)
{
    const std::optional<std::string> raw = envRaw(var);
    if (!raw)
        return fallback;
    const std::optional<unsigned long long> v = parseUInt(*raw);
    if (!v || *v < min_value || *v > max_value) {
        envUsageError(var, *raw,
                      "an integer in [" + std::to_string(min_value)
                              + ", " + std::to_string(max_value) + "]");
    }
    return *v;
}

/**
 * Boolean from @p var, or @p fallback when unset. Accepts exactly
 * 0/1/on/off/true/false/yes/no (case-insensitive); anything else is
 * fatal — REPRO_BATCH_SWEEP=fales used to silently mean "on".
 */
inline bool
envFlagOr(const char* var, bool fallback)
{
    const std::optional<std::string> raw = envRaw(var);
    if (!raw)
        return fallback;
    std::string v;
    for (char c : *raw)
        v += static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
    if (v == "1" || v == "on" || v == "true" || v == "yes")
        return true;
    if (v == "0" || v == "off" || v == "false" || v == "no")
        return false;
    envUsageError(var, *raw, "one of 0/1/on/off/true/false/yes/no");
}

} // namespace vpred

#endif // DFCM_CORE_ENV_UTIL_HH
