// repro-lint: hot-path (the drain sweep and admit loop live here)

#include "service/shard.hh"

#include <algorithm>
#include <cassert>

namespace vpred::service
{

namespace
{

MultiGeomConfig
kernelConfig(const ServiceConfig& cfg)
{
    MultiGeomConfig kc;
    kc.l1_bits = cfg.l1_bits;
    kc.value_bits = cfg.value_bits;
    kc.stride_bits = cfg.stride_bits;
    kc.hash_shift = cfg.hash_shift;
    kc.l2_bits = cfg.l2_bits;
    return kc;
}

constexpr std::uint32_t kNoSpill = ~std::uint32_t{0};

} // namespace

Shard::Shard(const ServiceConfig& cfg)
    : kernel_(kernelConfig(cfg)), capacity_(kernel_.l1Entries()),
      backend_(cfg.backend ? *cfg.backend : activeSimdBackend()),
      map_(capacity_), slot_stream_(capacity_, 0),
      slot_epoch_(capacity_, 0), slot_spill_(capacity_, kNoSpill),
      flush_threshold_(std::max<std::size_t>(1, capacity_ / 2)),
      spill_index_(16), rings_(cfg.max_producers),
      ring_capacity_(cfg.ring_capacity),
      publish_batch_(cfg.publish_batch),
      sweep_quota_(cfg.sweep_quota_min),
      sweep_quota_min_(cfg.sweep_quota_min),
      sweep_quota_max_(cfg.sweep_quota_max),
      drain_slo_ns_(cfg.drain_slo_ns)
{
    stats_.correct.assign(kernel_.columns(), 0);
    batch_.reserve(cfg.batch_records);
    pending_.reserve(std::max(cfg.batch_records, sweep_quota_min_));
    ring_take_.assign(cfg.max_producers, 0);
}

void
Shard::addProducerRing(std::size_t producer)
{
    assert(producer < rings_.size());
    assert(rings_[producer] == nullptr);
    assert(producer == ring_count_.load(std::memory_order_relaxed));
    rings_[producer] =
            std::make_unique<SpscRing>(ring_capacity_, publish_batch_);
    // The release store pairs with drain()'s acquire load: a sweep
    // that sees the new count sees a fully constructed ring.
    ring_count_.store(producer + 1, std::memory_order_release);
}

RingCounters
Shard::ringCounters() const
{
    RingCounters agg;
    const std::size_t n = ring_count_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
        const RingCounters c = rings_[i]->counters();
        agg.publishes += c.publishes;
        agg.published_records += c.published_records;
        agg.full_events += c.full_events;
    }
    return agg;
}

std::size_t
Shard::drain(std::uint64_t now_ns)
{
    const std::size_t n = ring_count_.load(std::memory_order_acquire);
    if (n == 0)
        return 0;

    // Snapshot the per-ring backlog once: this drain takes at most
    // what was already published at entry, so every record it admits
    // was stamped before now_ns and the latency histogram stays
    // truthful. Records published while we drain wait for the next
    // pump — that also bounds the drain against a producer that can
    // refill as fast as we sweep.
    std::size_t backlog = 0;
    for (std::size_t i = 0; i < n; ++i) {
        ring_take_[i] = rings_[i]->occupancy();
        backlog += ring_take_[i];
    }
    stats_.max_backlog = std::max(stats_.max_backlog,
                                  std::uint64_t{backlog});

    // Sweep the snapshot, bounded by the adaptive quota. Records
    // move in kChunk pops: the staging buffer stays L2-resident
    // however large the quota grows, and ring slots are freed
    // incrementally instead of only after the whole sweep, so a
    // blocked producer can resume mid-drain.
    constexpr std::size_t kChunk = 8192;
    const std::size_t quota = sweep_quota_;
    LatencyHistogram drain_latency;
    std::size_t drained = 0;
    for (std::size_t i = 0; i < n && drained < quota; ++i) {
        std::size_t take = std::min(ring_take_[i], quota - drained);
        while (take > 0) {
            pending_.clear();
            const std::size_t got = rings_[i]->popInto(
                    pending_, std::min(kChunk, take));
            if (got == 0)
                break;  // defensive: the snapshot says it's there
            admitRange(now_ns, drain_latency);
            drained += got;
            take -= got;
        }
    }
    if (drained == 0)
        return 0;
    stats_.ingested += drained;
    flushBatch();
    pending_.clear();
    drain_batch_records_.record(drained);
    latency_.merge(drain_latency);

    // Adaptive quota: shrink when this drain's p99 busts the SLO
    // (shed work to producers as accounted backpressure), else grow
    // while the rings run hot — quota exhausted, or backlog still
    // published behind us. Shrink deliberately wins over grow.
    bool hot = drained >= quota;
    for (std::size_t i = 0; !hot && i < n; ++i)
        hot = rings_[i]->occupancy() > 0;
    if (drain_latency.quantileNs(0.99) > drain_slo_ns_) {
        if (sweep_quota_ > sweep_quota_min_) {
            sweep_quota_ = std::max(sweep_quota_min_, sweep_quota_ / 2);
            ++stats_.quota_shrinks;
        }
    } else if (hot && sweep_quota_ < sweep_quota_max_) {
        sweep_quota_ = std::min(sweep_quota_max_, sweep_quota_ * 2);
        ++stats_.quota_grows;
    }
    return drained;
}

void
Shard::admitRange(std::uint64_t now_ns, LatencyHistogram& drain_latency)
{
    // How far ahead of the admit loop to prefetch the two map home
    // buckets: enough outstanding loads to cover a DRAM round trip.
    constexpr std::size_t kAhead = 12;
    // Second prefetch stage, closer in: by the time a record is
    // kBank away its spill-index bucket (prefetched at kAhead) is
    // cached, so probing it is cheap — and the probe yields the
    // record's spill *bank*, the paddedColumns() block a restore
    // will copy out of spill_hists_. That bank is a cold DRAM line
    // in an array of millions of banks; without this stage every
    // restore of a returning stream eats the full round trip.
    constexpr std::size_t kBank = 6;
    const std::size_t pn = kernel_.paddedColumns();
    for (std::size_t i = 0; i < pending_.size(); ++i) {
        const Update& u = pending_[i];
        if (i + kAhead < pending_.size()) {
            map_.prefetch(pending_[i + kAhead].stream);
            spill_index_.prefetch(pending_[i + kAhead].stream);
        }
        if (i + kBank < pending_.size()) {
            if (const auto sp = spill_index_.find(
                        pending_[i + kBank].stream)) {
                __builtin_prefetch(&spill_hists_[*sp * pn]);
                __builtin_prefetch(&spill_last_[*sp]);
            }
            // The eviction the admit below this one will run takes
            // roughly the next clock slot, and spills into that
            // slot's cached spill bank — pull the line in for
            // writing. The guess is approximate (the scan skips
            // staged slots); a miss just wastes one hint.
            const std::size_t guess =
                    (hand_ + kBank) & (capacity_ - 1);
            const std::uint32_t gs = slot_spill_[guess];
            if (gs != kNoSpill) {
                __builtin_prefetch(&spill_hists_[gs * pn], 1);
                __builtin_prefetch(&spill_last_[gs], 1);
            }
        }
        // Segment boundary: cut the batch *here*, between updates,
        // rather than inside admit() — eviction then only ever sees
        // fully-flushed slots, and the kernel still receives large
        // packed batches even when every admission evicts.
        if (staged_streams_ >= flush_threshold_)
            flushBatch();
        const std::uint32_t slot = admit(u.stream);
        if (slot_epoch_[slot] != epoch_) {
            slot_epoch_[slot] = epoch_;
            ++staged_streams_;
        }
        batch_.push_back({Pc{slot}, u.value});
        drain_latency.record(now_ns > u.tick_ns ? now_ns - u.tick_ns
                                                : 0);
    }
}

std::uint32_t
Shard::admit(std::uint64_t stream)
{
    if (const auto slot = map_.find(stream))
        return *slot;

    std::uint32_t slot;
    if (next_unused_ < capacity_) {
        slot = static_cast<std::uint32_t>(next_unused_++);
    } else {
        // The victim is guaranteed un-staged (evictOne() skips slots
        // touched this segment), so its kernel state is current and
        // spills bit-identically without flushing first.
        slot = evictOne();
    }
    [[maybe_unused]] const bool inserted = map_.insert(stream, slot);
    assert(inserted);  // find() above proved the key absent
    slot_stream_[slot] = stream;

    if (const auto spill = spill_index_.find(stream)) {
        // A returning cold stream: reinstall its spilled level-1
        // state bit-identically.
        const std::size_t pn = kernel_.paddedColumns();
        const std::uint32_t* bank = &spill_hists_[*spill * pn];
        kernel_.setEntryHists(slot, {bank, pn});
        kernel_.setLastValue(slot, spill_last_[*spill]);
        slot_spill_[slot] = *spill;
        ++stats_.restores;
    } else {
        kernel_.clearEntry(slot);
        slot_spill_[slot] = kNoSpill;
    }
    return slot;
}

void
Shard::flushBatch()
{
    if (batch_.empty())
        return;
    PackedFeedInfo info;
    const std::vector<PredictorStats> s =
            kernel_.feedTracePacked(batch_, backend_, &info);
    for (std::size_t c = 0; c < s.size(); ++c)
        stats_.correct[c] += s[c].correct;
    stats_.predictions += batch_.size();
    stats_.flushes += 1;
    stats_.packed_steps += info.steps;
    stats_.gather_records += info.gather_records;
    stats_.scalar_records += info.scalar_records;
    batch_.clear();
    staged_streams_ = 0;
    ++epoch_;
}

std::uint32_t
Shard::evictOne()
{
    // Clock scan from the hand: consider the first kWindow slots
    // that are *not* staged in the current segment (those still have
    // records in batch_, so their kernel state is stale) and evict
    // the least recently touched. The flush threshold caps staged
    // slots at half the table, so a candidate always exists within
    // one lap; the flush-and-retry is a defensive backstop only.
    constexpr std::size_t kWindow = 8;
    std::size_t victim = capacity_;
    std::uint64_t best = ~std::uint64_t{0};
    std::size_t considered = 0;
    for (std::size_t i = 0; i < capacity_ && considered < kWindow;
         ++i) {
        const std::size_t s = (hand_ + i) & (capacity_ - 1);
        if (slot_epoch_[s] == epoch_)
            continue;  // staged this segment
        ++considered;
        if (slot_epoch_[s] < best) {
            best = slot_epoch_[s];
            victim = s;
        }
    }
    if (victim == capacity_) {
        flushBatch();
        return evictOne();
    }
    hand_ = (victim + 1) & (capacity_ - 1);

    const std::uint64_t stream = slot_stream_[victim];
    // admit() cached the stream's spill slot on entry, so at steady
    // state (every stream spilled at least once) eviction never
    // probes the big spill index.
    std::uint32_t spill_slot = slot_spill_[victim];
    if (spill_slot == kNoSpill)
        spill_slot = spillSlotFor(stream);
    spillTo(spill_slot, static_cast<std::uint32_t>(victim));

    [[maybe_unused]] const bool erased = map_.erase(stream);
    assert(erased);  // the victim slot always has a resident stream
    // No clearEntry here: admit() always overwrites the victim's
    // kernel state — a restore installs the returning stream's bank,
    // and the cold-miss path clears it — so clearing now would just
    // write the bank twice.
    ++stats_.evictions;
    return static_cast<std::uint32_t>(victim);
}

std::uint32_t
Shard::spillSlotFor(std::uint64_t stream)
{
    if (const auto existing = spill_index_.find(stream))
        return *existing;
    const auto spill_slot =
            static_cast<std::uint32_t>(spill_last_.size());
    spill_hists_.resize(spill_hists_.size() + kernel_.paddedColumns());
    spill_last_.resize(spill_last_.size() + 1);  // new slot, zeroed
    spill_streams_.push_back(stream);
    [[maybe_unused]] const bool fresh =
            spill_index_.insert(stream, spill_slot);
    assert(fresh);  // find() above proved the stream never spilled
    return spill_slot;
}

void
Shard::spillTo(std::uint32_t spill_slot, std::uint32_t kernel_slot)
{
    const std::size_t pn = kernel_.paddedColumns();
    const std::span<const std::uint32_t> bank =
            kernel_.entryHists(kernel_slot);
    std::copy(bank.begin(), bank.end(),
              spill_hists_.begin()
                      + static_cast<std::ptrdiff_t>(spill_slot * pn));
    spill_last_[spill_slot] = kernel_.lastValue(kernel_slot);
}

std::size_t
Shard::spilledStreams() const
{
    // Streams with a spill slot but no kernel slot — a resident
    // stream's spill copy is stale by definition.
    std::size_t n = 0;
    for (const std::uint64_t stream : spill_streams_)
        if (!map_.find(stream).has_value())
            ++n;
    return n;
}

std::optional<StreamState>
Shard::streamState(std::uint64_t stream) const
{
    StreamState st;
    const std::size_t pn = kernel_.paddedColumns();
    if (const auto slot = map_.find(stream)) {
        const std::span<const std::uint32_t> bank =
                kernel_.entryHists(*slot);
        st.hists.assign(bank.begin(), bank.end());
        st.last = kernel_.lastValue(*slot);
        return st;
    }
    if (const auto spill = spill_index_.find(stream)) {
        const std::uint32_t* bank = &spill_hists_[*spill * pn];
        st.hists.assign(bank, bank + pn);
        st.last = spill_last_[*spill];
        return st;
    }
    return std::nullopt;
}

void
Shard::appendSnapshot(ValueTrace& out) const
{
    const std::size_t pn = kernel_.paddedColumns();
    const auto append = [&](std::uint64_t stream,
                            std::span<const std::uint32_t> bank,
                            Value last) {
        out.push_back({stream, last});
        for (std::size_t c = 0; c < pn; ++c)
            out.push_back({stream, Value{bank[c]}});
    };
    for (std::size_t slot = 0; slot < next_unused_; ++slot) {
        const std::uint64_t stream = slot_stream_[slot];
        const auto mapped = map_.find(stream);
        if (!mapped || *mapped != slot)
            continue;  // slot's stream was evicted and slot reused
        append(stream, kernel_.entryHists(slot),
               kernel_.lastValue(slot));
    }
    // Spilled streams that are not resident (a resident stream's
    // spill copy is stale; its live block was appended above).
    for (std::uint32_t spill = 0;
         spill < static_cast<std::uint32_t>(spill_last_.size());
         ++spill) {
        const std::uint64_t stream = spill_streams_[spill];
        if (map_.find(stream).has_value())
            continue;
        const std::uint32_t* bank = &spill_hists_[spill * pn];
        append(stream, {bank, pn}, spill_last_[spill]);
    }
}

void
Shard::installStream(std::uint64_t stream, const StreamState& state)
{
    const std::size_t pn = kernel_.paddedColumns();
    assert(state.hists.size() == pn);
    const std::uint32_t spill_slot = spillSlotFor(stream);
    std::copy(state.hists.begin(), state.hists.end(),
              spill_hists_.begin()
                      + static_cast<std::ptrdiff_t>(spill_slot * pn));
    spill_last_[spill_slot] = state.last;
    // If the stream is resident, the kernel copy is authoritative —
    // overwrite it too so install wins unambiguously.
    if (const auto slot = map_.find(stream)) {
        kernel_.setEntryHists(*slot, state.hists);
        kernel_.setLastValue(*slot, state.last);
        slot_spill_[*slot] = spill_slot;
    }
}

} // namespace vpred::service
