#include "service/shard.hh"

#include <algorithm>
#include <cassert>

namespace vpred::service
{

namespace
{

MultiGeomConfig
kernelConfig(const ServiceConfig& cfg)
{
    MultiGeomConfig kc;
    kc.l1_bits = cfg.l1_bits;
    kc.value_bits = cfg.value_bits;
    kc.stride_bits = cfg.stride_bits;
    kc.hash_shift = cfg.hash_shift;
    kc.l2_bits = cfg.l2_bits;
    return kc;
}

constexpr std::uint32_t kNoSpill = ~std::uint32_t{0};

} // namespace

Shard::Shard(const ServiceConfig& cfg)
    : kernel_(kernelConfig(cfg)), capacity_(kernel_.l1Entries()),
      backend_(activeSimdBackend()), map_(capacity_),
      slot_stream_(capacity_, 0), slot_epoch_(capacity_, 0),
      slot_spill_(capacity_, kNoSpill),
      flush_threshold_(std::max<std::size_t>(1, capacity_ / 2)),
      spill_index_(16)
{
    stats_.correct.assign(kernel_.columns(), 0);
    batch_.reserve(cfg.batch_records);
    queue_.reserve(cfg.batch_records);
    pending_.reserve(cfg.batch_records);
}

void
Shard::enqueue(std::uint64_t stream, Value value, std::uint64_t tick_ns)
{
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.push_back({stream, value, tick_ns});
}

std::size_t
Shard::drain(std::uint64_t now_ns)
{
    {
        const std::lock_guard<std::mutex> lock(queue_mutex_);
        pending_.swap(queue_);
    }
    if (pending_.empty())
        return 0;
    stats_.max_queue = std::max(stats_.max_queue,
                                std::uint64_t{pending_.size()});

    // How far ahead of the admit loop to prefetch the two map home
    // buckets: enough outstanding loads to cover a DRAM round trip.
    constexpr std::size_t kAhead = 12;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
        const Update& u = pending_[i];
        if (i + kAhead < pending_.size()) {
            map_.prefetch(pending_[i + kAhead].stream);
            spill_index_.prefetch(pending_[i + kAhead].stream);
        }
        // Segment boundary: cut the batch *here*, between updates,
        // rather than inside admit() — eviction then only ever sees
        // fully-flushed slots, and the kernel still receives large
        // packed batches even when every admission evicts.
        if (staged_streams_ >= flush_threshold_)
            flushBatch();
        const std::uint32_t slot = admit(u.stream);
        if (slot_epoch_[slot] != epoch_) {
            slot_epoch_[slot] = epoch_;
            ++staged_streams_;
        }
        batch_.push_back({Pc{slot}, u.value});
        latency_.record(now_ns > u.tick_ns ? now_ns - u.tick_ns : 0);
    }
    const std::size_t drained = pending_.size();
    stats_.ingested += drained;
    flushBatch();
    pending_.clear();
    drain_batch_records_.record(drained);
    return drained;
}

std::uint32_t
Shard::admit(std::uint64_t stream)
{
    if (const auto slot = map_.find(stream))
        return *slot;

    std::uint32_t slot;
    if (next_unused_ < capacity_) {
        slot = static_cast<std::uint32_t>(next_unused_++);
    } else {
        // The victim is guaranteed un-staged (evictOne() skips slots
        // touched this segment), so its kernel state is current and
        // spills bit-identically without flushing first.
        slot = evictOne();
    }
    map_.insert(stream, slot);
    slot_stream_[slot] = stream;

    if (const auto spill = spill_index_.find(stream)) {
        // A returning cold stream: reinstall its spilled level-1
        // state bit-identically.
        const std::size_t pn = kernel_.paddedColumns();
        const std::uint32_t* bank = &spill_hists_[*spill * pn];
        kernel_.setEntryHists(slot, {bank, pn});
        kernel_.setLastValue(slot, spill_last_[*spill]);
        slot_spill_[slot] = *spill;
        ++stats_.restores;
    } else {
        kernel_.clearEntry(slot);
        slot_spill_[slot] = kNoSpill;
    }
    return slot;
}

void
Shard::flushBatch()
{
    if (batch_.empty())
        return;
    PackedFeedInfo info;
    const std::vector<PredictorStats> s =
            kernel_.feedTracePacked(batch_, backend_, &info);
    for (std::size_t c = 0; c < s.size(); ++c)
        stats_.correct[c] += s[c].correct;
    stats_.predictions += batch_.size();
    stats_.flushes += 1;
    stats_.packed_steps += info.steps;
    stats_.gather_records += info.gather_records;
    stats_.scalar_records += info.scalar_records;
    batch_.clear();
    staged_streams_ = 0;
    ++epoch_;
}

std::uint32_t
Shard::evictOne()
{
    // Clock scan from the hand: consider the first kWindow slots
    // that are *not* staged in the current segment (those still have
    // records in batch_, so their kernel state is stale) and evict
    // the least recently touched. The flush threshold caps staged
    // slots at half the table, so a candidate always exists within
    // one lap; the flush-and-retry is a defensive backstop only.
    constexpr std::size_t kWindow = 16;
    std::size_t victim = capacity_;
    std::uint64_t best = ~std::uint64_t{0};
    std::size_t considered = 0;
    for (std::size_t i = 0; i < capacity_ && considered < kWindow;
         ++i) {
        const std::size_t s = (hand_ + i) & (capacity_ - 1);
        if (slot_epoch_[s] == epoch_)
            continue;  // staged this segment
        ++considered;
        if (slot_epoch_[s] < best) {
            best = slot_epoch_[s];
            victim = s;
        }
    }
    if (victim == capacity_) {
        flushBatch();
        return evictOne();
    }
    hand_ = (victim + 1) & (capacity_ - 1);

    const std::uint64_t stream = slot_stream_[victim];
    // admit() cached the stream's spill slot on entry, so at steady
    // state (every stream spilled at least once) eviction never
    // probes the big spill index.
    std::uint32_t spill_slot = slot_spill_[victim];
    if (spill_slot == kNoSpill)
        spill_slot = spillSlotFor(stream);
    spillTo(spill_slot, static_cast<std::uint32_t>(victim));

    map_.erase(stream);
    kernel_.clearEntry(victim);
    ++stats_.evictions;
    return static_cast<std::uint32_t>(victim);
}

std::uint32_t
Shard::spillSlotFor(std::uint64_t stream)
{
    if (const auto existing = spill_index_.find(stream))
        return *existing;
    const auto spill_slot =
            static_cast<std::uint32_t>(spill_last_.size());
    spill_hists_.resize(spill_hists_.size() + kernel_.paddedColumns());
    spill_last_.push_back(0);
    spill_streams_.push_back(stream);
    spill_index_.insert(stream, spill_slot);
    return spill_slot;
}

void
Shard::spillTo(std::uint32_t spill_slot, std::uint32_t kernel_slot)
{
    const std::size_t pn = kernel_.paddedColumns();
    const std::span<const std::uint32_t> bank =
            kernel_.entryHists(kernel_slot);
    std::copy(bank.begin(), bank.end(),
              spill_hists_.begin()
                      + static_cast<std::ptrdiff_t>(spill_slot * pn));
    spill_last_[spill_slot] = kernel_.lastValue(kernel_slot);
}

std::size_t
Shard::spilledStreams() const
{
    // Streams with a spill slot but no kernel slot — a resident
    // stream's spill copy is stale by definition.
    std::size_t n = 0;
    for (const std::uint64_t stream : spill_streams_)
        if (!map_.find(stream).has_value())
            ++n;
    return n;
}

std::optional<StreamState>
Shard::streamState(std::uint64_t stream) const
{
    StreamState st;
    const std::size_t pn = kernel_.paddedColumns();
    if (const auto slot = map_.find(stream)) {
        const std::span<const std::uint32_t> bank =
                kernel_.entryHists(*slot);
        st.hists.assign(bank.begin(), bank.end());
        st.last = kernel_.lastValue(*slot);
        return st;
    }
    if (const auto spill = spill_index_.find(stream)) {
        const std::uint32_t* bank = &spill_hists_[*spill * pn];
        st.hists.assign(bank, bank + pn);
        st.last = spill_last_[*spill];
        return st;
    }
    return std::nullopt;
}

void
Shard::appendSnapshot(ValueTrace& out) const
{
    const std::size_t pn = kernel_.paddedColumns();
    const auto append = [&](std::uint64_t stream,
                            std::span<const std::uint32_t> bank,
                            Value last) {
        out.push_back({stream, last});
        for (std::size_t c = 0; c < pn; ++c)
            out.push_back({stream, Value{bank[c]}});
    };
    for (std::size_t slot = 0; slot < next_unused_; ++slot) {
        const std::uint64_t stream = slot_stream_[slot];
        const auto mapped = map_.find(stream);
        if (!mapped || *mapped != slot)
            continue;  // slot's stream was evicted and slot reused
        append(stream, kernel_.entryHists(slot),
               kernel_.lastValue(slot));
    }
    // Spilled streams that are not resident (a resident stream's
    // spill copy is stale; its live block was appended above).
    for (std::uint32_t spill = 0;
         spill < static_cast<std::uint32_t>(spill_last_.size());
         ++spill) {
        const std::uint64_t stream = spill_streams_[spill];
        if (map_.find(stream).has_value())
            continue;
        const std::uint32_t* bank = &spill_hists_[spill * pn];
        append(stream, {bank, pn}, spill_last_[spill]);
    }
}

void
Shard::installStream(std::uint64_t stream, const StreamState& state)
{
    const std::size_t pn = kernel_.paddedColumns();
    assert(state.hists.size() == pn);
    const std::uint32_t spill_slot = spillSlotFor(stream);
    std::copy(state.hists.begin(), state.hists.end(),
              spill_hists_.begin()
                      + static_cast<std::ptrdiff_t>(spill_slot * pn));
    spill_last_[spill_slot] = state.last;
    // If the stream is resident, the kernel copy is authoritative —
    // overwrite it too so install wins unambiguously.
    if (const auto slot = map_.find(stream)) {
        kernel_.setEntryHists(*slot, state.hists);
        kernel_.setLastValue(*slot, state.last);
        slot_spill_[*slot] = spill_slot;
    }
}

} // namespace vpred::service
