#include "service/service_config.hh"

#include "core/env_util.hh"

namespace vpred::service
{

ServiceConfig
ServiceConfig::fromEnv()
{
    ServiceConfig cfg;
    cfg.shards = static_cast<unsigned>(
            envUIntOr("REPRO_SERVICE_SHARDS", cfg.shards, 0, 256));
    cfg.batch_records = envUIntOr("REPRO_SERVICE_BATCH",
                                  cfg.batch_records, 1,
                                  std::size_t{1} << 20);
    return cfg;
}

} // namespace vpred::service
