#include "service/service_config.hh"

#include <algorithm>

#include "core/env_util.hh"

namespace vpred::service
{

ServiceConfig
ServiceConfig::fromEnv()
{
    ServiceConfig cfg;
    cfg.shards = static_cast<unsigned>(
            envUIntOr("REPRO_SERVICE_SHARDS", cfg.shards, 0, 256));
    cfg.batch_records = envUIntOr("REPRO_SERVICE_BATCH",
                                  cfg.batch_records, 1,
                                  std::size_t{1} << 20);

    cfg.ring_capacity = envUIntOr("REPRO_SERVICE_RING_CAP",
                                  cfg.ring_capacity, 2,
                                  std::size_t{1} << 20);
    if ((cfg.ring_capacity & (cfg.ring_capacity - 1)) != 0)
        envUsageError("REPRO_SERVICE_RING_CAP",
                      std::to_string(cfg.ring_capacity),
                      "a power of two");
    // The upper bound depends on the (possibly env-set) capacity, so
    // a publish batch that cannot fit in the ring is rejected with
    // the real limit in the message.
    cfg.publish_batch = envUIntOr("REPRO_SERVICE_RING_PUBLISH",
                                  std::min(cfg.publish_batch,
                                           cfg.ring_capacity),
                                  1, cfg.ring_capacity);
    cfg.max_producers = static_cast<unsigned>(
            envUIntOr("REPRO_SERVICE_RING_PRODUCERS",
                      cfg.max_producers, 1, 1024));
    cfg.sweep_quota_min = envUIntOr("REPRO_SERVICE_RING_QUOTA_MIN",
                                    cfg.sweep_quota_min, 64,
                                    std::size_t{1} << 24);
    cfg.sweep_quota_max = envUIntOr("REPRO_SERVICE_RING_QUOTA_MAX",
                                    cfg.sweep_quota_max,
                                    cfg.sweep_quota_min,
                                    std::size_t{1} << 24);
    cfg.drain_slo_ns = envUIntOr("REPRO_SERVICE_RING_SLO_NS",
                                 cfg.drain_slo_ns, 1,
                                 std::uint64_t{1'000'000'000'000});
    return cfg;
}

} // namespace vpred::service
