/**
 * @file
 * One shard of the always-on prediction service.
 *
 * A shard exclusively owns the predictor state for its slice of the
 * stream-id space: a MultiGeomDfcmKernel whose 2^l1_bits level-1
 * entries hold the *resident* (hot) streams, a SlotMap assigning
 * dense kernel slots to stream ids, and a spill area holding the
 * relocatable level-1 state (hashed-history bank + last value) of
 * every stream that has been evicted to make room. Producers on any
 * thread enqueue() (pc, value) updates into the shard's MPSC queue;
 * the shard's pump thread drain()s the queue, admits streams
 * (restoring spilled state bit-identically when a cold stream
 * returns), and feeds the batch through the kernel's *stream-packed*
 * tier (feedTracePacked): records from distinct resident streams
 * execute 16 to a vector step with gather/scatter level-2 probes.
 *
 * The drain is segmented so eviction and batching compose: a slot
 * whose records are staged in the current segment is never an
 * eviction victim (its kernel state would be stale), and the segment
 * is flushed once the staged-stream count reaches half the slot
 * table — so under heavy stream churn the kernel still sees large
 * packed batches instead of one feed per eviction.
 *
 * Concurrency contract: enqueue() is thread-safe against everything;
 * drain(), snapshots and state queries must be externally serialized
 * (PredictionService runs one drain per shard at a time and
 * snapshots only a quiescent service).
 *
 * Determinism contract: a stream's exported level-1 state depends
 * only on that stream's own value sequence — never on which shard it
 * lives in, which slot it occupies, or which other streams share the
 * kernel — so it is invariant across shard counts and eviction
 * schedules. (Shared level-2 tables are deliberately outside the
 * contract: level-2 hit rates legitimately vary with co-residency,
 * exactly like aliasing in the paper's shared tables.)
 */

#ifndef DFCM_SERVICE_SHARD_HH
#define DFCM_SERVICE_SHARD_HH

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "core/multi_geom.hh"
#include "core/types.hh"
#include "service/latency_histogram.hh"
#include "service/service_config.hh"
#include "service/slot_map.hh"

namespace vpred::service
{

/** One ingested update, stamped by the producer for the
 *  ingest-to-predict latency histogram. */
struct Update
{
    std::uint64_t stream;
    Value value;
    std::uint64_t tick_ns;
};

/** The relocatable per-stream level-1 state: one hashed-history lane
 *  per kernel column (padded bank, exported verbatim) plus the DFCM
 *  last value. This is exactly what eviction spills and restore
 *  reinstalls. */
struct StreamState
{
    std::vector<std::uint32_t> hists;
    Value last = 0;

    bool operator==(const StreamState&) const = default;
};

struct ShardStats
{
    std::uint64_t ingested = 0;     //!< updates drained from the queue
    std::uint64_t predictions = 0;  //!< records fed to the kernel
    std::uint64_t evictions = 0;
    std::uint64_t restores = 0;     //!< spilled streams re-admitted
    std::uint64_t max_queue = 0;    //!< deepest queue seen at drain
    std::uint64_t flushes = 0;      //!< packed segments fed
    std::uint64_t packed_steps = 0; //!< 16-lane steps executed
    std::uint64_t gather_records = 0;  //!< records on a gather backend
    std::uint64_t scalar_records = 0;  //!< records on the scalar path
    /** Correct predictions per kernel column. */
    std::vector<std::uint64_t> correct;
};

class Shard
{
  public:
    explicit Shard(const ServiceConfig& cfg);

    /** Thread-safe producer entry point. */
    void enqueue(std::uint64_t stream, Value value,
                 std::uint64_t tick_ns);

    /**
     * Drain everything enqueued so far through the kernel; pump
     * thread only. @p now_ns is the drain timestamp used for the
     * latency histogram (enqueue-to-drain). Returns records fed.
     */
    std::size_t drain(std::uint64_t now_ns);

    /** Streams currently resident in the kernel. */
    std::size_t residentStreams() const { return map_.size(); }
    /** Streams whose state lives in the spill area only. */
    std::size_t spilledStreams() const;

    const ShardStats& stats() const { return stats_; }
    const LatencyHistogram& latency() const { return latency_; }
    /** Per-drain batch-size distribution (records per drain() call
     *  that moved at least one record). */
    const LatencyHistogram& drainBatchRecords() const
    {
        return drain_batch_records_;
    }

    /**
     * The level-1 state of @p stream, resident or spilled; nullopt
     * for a stream this shard has never seen. Quiescent only.
     */
    std::optional<StreamState> streamState(std::uint64_t stream) const;

    /**
     * Append one fixed-size block per known stream to @p out for a
     * VPT2 snapshot: {pc=stream, value=last} followed by one
     * {pc=stream, value=hist lane} record per padded kernel column.
     * Quiescent only; resident streams first, then spilled ones.
     */
    void appendSnapshot(ValueTrace& out) const;

    /** Snapshot block length in records: 1 + paddedColumns(). */
    std::size_t blockRecords() const
    {
        return 1 + kernel_.paddedColumns();
    }

    /**
     * Install @p state for @p stream (the restore path). The stream
     * lands in the spill area and is admitted on its next update, so
     * restore never disturbs resident streams. Quiescent only.
     */
    void installStream(std::uint64_t stream, const StreamState& state);

  private:
    std::uint32_t admit(std::uint64_t stream);
    void flushBatch();
    std::uint32_t evictOne();
    std::uint32_t spillSlotFor(std::uint64_t stream);
    void spillTo(std::uint32_t spill_slot, std::uint32_t kernel_slot);

    MultiGeomDfcmKernel kernel_;
    std::size_t capacity_;
    SimdBackend backend_;  //!< packed-feed backend, resolved once

    // Resident-stream bookkeeping, indexed by kernel slot. The epoch
    // advances once per segment flush, so slot_epoch_[s] == epoch_
    // identifies exactly the slots with records staged in batch_ —
    // the slots eviction must not touch (epoch 0 is reserved for
    // never-touched slots; epoch_ starts at 1).
    SlotMap map_;
    std::vector<std::uint64_t> slot_stream_;
    std::vector<std::uint64_t> slot_epoch_;
    /** Resident slot -> spill slot (kNoSpill before first spill):
     *  lets eviction skip the spill-index probe at steady state. */
    std::vector<std::uint32_t> slot_spill_;
    std::size_t next_unused_ = 0;  //!< slots never yet allocated
    std::size_t hand_ = 0;         //!< eviction clock hand
    std::uint64_t epoch_ = 1;      //!< advances once per segment flush
    std::size_t staged_streams_ = 0;  //!< distinct slots in batch_
    std::size_t flush_threshold_;     //!< staged streams per segment

    // Spill area: flat banks indexed by spill slot; a stream keeps
    // its spill slot for life, so repeated evictions overwrite in
    // place and memory stays proportional to distinct streams seen.
    SlotMap spill_index_;
    std::vector<std::uint32_t> spill_hists_;
    std::vector<Value> spill_last_;
    std::vector<std::uint64_t> spill_streams_;  //!< spill slot -> id

    // MPSC ingest queue: producers append under the mutex, drain()
    // swaps the vector out and processes without the lock.
    std::mutex queue_mutex_;
    std::vector<Update> queue_;
    std::vector<Update> pending_;  //!< drain-side swap target
    ValueTrace batch_;             //!< records staged for feedTrace

    ShardStats stats_;
    LatencyHistogram latency_;
    LatencyHistogram drain_batch_records_;
};

} // namespace vpred::service

#endif // DFCM_SERVICE_SHARD_HH
