/**
 * @file
 * One shard of the always-on prediction service. repro-lint: hot-path
 *
 * A shard exclusively owns the predictor state for its slice of the
 * stream-id space: a MultiGeomDfcmKernel whose 2^l1_bits level-1
 * entries hold the *resident* (hot) streams, a SlotMap assigning
 * dense kernel slots to stream ids, and a spill area holding the
 * relocatable level-1 state (hashed-history bank + last value) of
 * every stream that has been evicted to make room.
 *
 * Ingest is a lock-free fabric: each registered producer owns one
 * bounded SPSC ring into this shard (see spsc_ring.hh for the
 * memory-order argument). Producers tryEnqueue() into their ring —
 * ring-full is a retriable backpressure status, never a blocked
 * thread — and the shard's pump thread drain()s by sweeping all
 * rings into a staging vector, admitting streams (restoring spilled
 * state bit-identically when a cold stream returns), and feeding the
 * batch through the kernel's *stream-packed* tier (feedTracePacked):
 * records from distinct resident streams execute 16 to a vector step
 * with gather/scatter level-2 probes.
 *
 * The sweep is quota-bounded and adaptive: drain() moves at most
 * sweep_quota_ records per call, doubling the quota while rings run
 * hot (quota exhausted or backlog left behind) and halving it when
 * the per-drain ingest-to-predict p99 exceeds the configured SLO.
 * Shrink wins over grow — when the SLO is busted the fabric sheds
 * work to the producers as explicit, accounted backpressure instead
 * of letting drain latency compound.
 *
 * The drain is segmented so eviction and batching compose: a slot
 * whose records are staged in the current segment is never an
 * eviction victim (its kernel state would be stale), and the segment
 * is flushed once the staged-stream count reaches half the slot
 * table — so under heavy stream churn the kernel still sees large
 * packed batches instead of one feed per eviction.
 *
 * Concurrency contract: tryEnqueue()/flushProducer() are safe from
 * the owning producer's thread concurrently with everything;
 * addProducerRing() publishes new rings to a running drain via an
 * acquire/release count. drain(), snapshots and state queries must
 * be externally serialized (PredictionService runs one drain per
 * shard at a time and snapshots only a quiescent service).
 *
 * Determinism contract: a stream's exported level-1 state depends
 * only on that stream's own value sequence — never on which shard it
 * lives in, which slot it occupies, which producer ring carried it,
 * or which other streams share the kernel — so it is invariant
 * across shard counts, ring capacities, producer counts and eviction
 * schedules. (Shared level-2 tables are deliberately outside the
 * contract: level-2 hit rates legitimately vary with co-residency,
 * exactly like aliasing in the paper's shared tables.)
 */

#ifndef DFCM_SERVICE_SHARD_HH
#define DFCM_SERVICE_SHARD_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/multi_geom.hh"
#include "core/types.hh"
#include "service/latency_histogram.hh"
#include "service/service_config.hh"
#include "service/slot_map.hh"
#include "service/spsc_ring.hh"

namespace vpred::service
{

/** The relocatable per-stream level-1 state: one hashed-history lane
 *  per kernel column (padded bank, exported verbatim) plus the DFCM
 *  last value. This is exactly what eviction spills and restore
 *  reinstalls. */
struct StreamState
{
    std::vector<std::uint32_t> hists;
    Value last = 0;

    bool operator==(const StreamState&) const = default;
};

struct ShardStats
{
    std::uint64_t ingested = 0;     //!< updates swept from the rings
    std::uint64_t predictions = 0;  //!< records fed to the kernel
    std::uint64_t evictions = 0;
    std::uint64_t restores = 0;     //!< spilled streams re-admitted
    std::uint64_t max_backlog = 0;  //!< deepest summed ring occupancy
                                    //!< seen at drain entry
    std::uint64_t flushes = 0;      //!< packed segments fed
    std::uint64_t packed_steps = 0; //!< 16-lane steps executed
    std::uint64_t gather_records = 0;  //!< records on a gather backend
    std::uint64_t scalar_records = 0;  //!< records on the scalar path
    std::uint64_t quota_grows = 0;   //!< sweep-quota doublings
    std::uint64_t quota_shrinks = 0; //!< sweep-quota halvings
    /** Correct predictions per kernel column. */
    std::vector<std::uint64_t> correct;
};

class Shard
{
  public:
    explicit Shard(const ServiceConfig& cfg);

    /**
     * Create the SPSC ring for producer @p producer (a dense index
     * assigned by PredictionService). Serialized by the service's
     * registration lock; safe against a concurrent drain() — the
     * ring becomes sweepable only after the release-store of the
     * ring count. Each producer index is registered exactly once.
     */
    void addProducerRing(std::size_t producer);

    /**
     * Producer entry point: append one update to @p producer's ring.
     * Owning producer thread only. Returns false — retriable
     * backpressure — when the ring is full; everything pending is
     * published before the rejection, so a retry after the next
     * drain can succeed.
     */
    [[nodiscard]] bool
    tryEnqueue(std::size_t producer, std::uint64_t stream, Value value,
               std::uint64_t tick_ns)
    {
        return rings_[producer]->tryPush({stream, value, tick_ns});
    }

    /** Publish @p producer's pending records (flush-on-ingest-idle).
     *  Owning producer thread only. */
    void
    flushProducer(std::size_t producer)
    {
        rings_[producer]->publish();
    }

    /**
     * Sweep up to the adaptive quota of published records from all
     * producer rings through the kernel; pump thread only. @p now_ns
     * is the drain timestamp used for the latency histogram
     * (publish-to-drain). Returns records fed.
     */
    std::size_t drain(std::uint64_t now_ns);

    /** Streams currently resident in the kernel. */
    std::size_t residentStreams() const { return map_.size(); }
    /** Streams whose state lives in the spill area only. */
    std::size_t spilledStreams() const;

    const ShardStats& stats() const { return stats_; }
    /** Aggregate producer-side ring counters (safe anytime). */
    RingCounters ringCounters() const;
    /** Current adaptive sweep quota (pump thread only). */
    std::size_t sweepQuota() const { return sweep_quota_; }
    const LatencyHistogram& latency() const { return latency_; }
    /** Per-drain batch-size distribution (records per drain() call
     *  that moved at least one record). */
    const LatencyHistogram& drainBatchRecords() const
    {
        return drain_batch_records_;
    }

    /**
     * The level-1 state of @p stream, resident or spilled; nullopt
     * for a stream this shard has never seen. Quiescent only.
     */
    std::optional<StreamState> streamState(std::uint64_t stream) const;

    /**
     * Append one fixed-size block per known stream to @p out for a
     * VPT2 snapshot: {pc=stream, value=last} followed by one
     * {pc=stream, value=hist lane} record per padded kernel column.
     * Quiescent only; resident streams first, then spilled ones.
     */
    void appendSnapshot(ValueTrace& out) const;

    /** Snapshot block length in records: 1 + paddedColumns(). */
    std::size_t blockRecords() const
    {
        return 1 + kernel_.paddedColumns();
    }

    /**
     * Install @p state for @p stream (the restore path). The stream
     * lands in the spill area and is admitted on its next update, so
     * restore never disturbs resident streams. Quiescent only.
     */
    void installStream(std::uint64_t stream, const StreamState& state);

  private:
    /** Feed every record in pending_ through admit and the packed
     *  batch, with the two-stage prefetch pipeline. */
    void admitRange(std::uint64_t now_ns,
                    LatencyHistogram& drain_latency);
    std::uint32_t admit(std::uint64_t stream);
    void flushBatch();
    std::uint32_t evictOne();
    std::uint32_t spillSlotFor(std::uint64_t stream);
    void spillTo(std::uint32_t spill_slot, std::uint32_t kernel_slot);

    MultiGeomDfcmKernel kernel_;
    std::size_t capacity_;
    SimdBackend backend_;  //!< packed-feed backend, resolved once

    // Resident-stream bookkeeping, indexed by kernel slot. The epoch
    // advances once per segment flush, so slot_epoch_[s] == epoch_
    // identifies exactly the slots with records staged in batch_ —
    // the slots eviction must not touch (epoch 0 is reserved for
    // never-touched slots; epoch_ starts at 1).
    SlotMap map_;
    std::vector<std::uint64_t> slot_stream_;
    std::vector<std::uint64_t> slot_epoch_;
    /** Resident slot -> spill slot (kNoSpill before first spill):
     *  lets eviction skip the spill-index probe at steady state. */
    std::vector<std::uint32_t> slot_spill_;
    std::size_t next_unused_ = 0;  //!< slots never yet allocated
    std::size_t hand_ = 0;         //!< eviction clock hand
    std::uint64_t epoch_ = 1;      //!< advances once per segment flush
    std::size_t staged_streams_ = 0;  //!< distinct slots in batch_
    std::size_t flush_threshold_;     //!< staged streams per segment

    // Spill area: flat banks indexed by spill slot; a stream keeps
    // its spill slot for life, so repeated evictions overwrite in
    // place and memory stays proportional to distinct streams seen.
    // The hot banks are arena-backed (TableBuffer): at service scale
    // they reach hundreds of MiB, and the mmap backing's lazy zero
    // pages are first touched by this shard's own drain thread —
    // NUMA-correct placement without explicit pinning.
    SlotMap spill_index_;
    TableBuffer<std::uint32_t> spill_hists_;
    TableBuffer<Value> spill_last_;
    std::vector<std::uint64_t> spill_streams_;  //!< spill slot -> id

    // Ingest fabric: one SPSC ring per registered producer, slots
    // pre-allocated to the lifetime cap so the array itself is never
    // resized. ring_count_ publishes construction to the drain
    // thread (release on add, acquire at sweep).
    std::vector<std::unique_ptr<SpscRing>> rings_;
    std::atomic<std::size_t> ring_count_{0};
    std::size_t ring_capacity_;
    std::size_t publish_batch_;

    // Adaptive drain state (pump thread only).
    std::size_t sweep_quota_;
    std::size_t sweep_quota_min_;
    std::size_t sweep_quota_max_;
    std::uint64_t drain_slo_ns_;

    std::vector<Update> pending_;  //!< drain-side sweep target
    std::vector<std::size_t> ring_take_; //!< per-ring drain snapshot
    ValueTrace batch_;             //!< records staged for feedTrace

    ShardStats stats_;
    LatencyHistogram latency_;
    LatencyHistogram drain_batch_records_;
};

} // namespace vpred::service

#endif // DFCM_SERVICE_SHARD_HH
