/**
 * @file
 * The always-on sharded prediction service.
 *
 * Owns one Shard per configured core, routes every (stream, value)
 * update to its owning shard by a mixed hash of the stream id, and
 * pumps all shard queues in parallel on the harness ThreadPool. The
 * service is long-lived: state accumulates across pump() calls
 * (shards feed the fused multi-geometry kernels incrementally and
 * spill/restore cold streams), so millions of concurrent streams
 * are served from bounded resident table space.
 *
 * Snapshots serialize every known stream's relocatable level-1
 * state into a VPT2 container (the PR-3 trace store format): one
 * fixed-size block of TraceRecords per stream, written atomically
 * via TraceStore's temp-file/rename discipline and restored through
 * the zero-copy mmap path.
 *
 * Threading: ingest() may be called from any number of producer
 * threads. pump() runs drains in parallel (one task per shard — a
 * shard is never drained by two threads at once) and must not run
 * concurrently with itself, snapshots or state queries.
 */

#ifndef DFCM_SERVICE_PREDICTION_SERVICE_HH
#define DFCM_SERVICE_PREDICTION_SERVICE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "harness/parallel_sweep.hh"
#include "service/shard.hh"

namespace vpred::service
{

/** Aggregate of all shard stats, plus the merged latency view. */
struct ServiceStats
{
    std::uint64_t ingested = 0;
    std::uint64_t predictions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t restores = 0;
    std::uint64_t resident_streams = 0;
    std::uint64_t spilled_streams = 0;
    /** Correct predictions for the kernels' first level-2 column. */
    std::uint64_t correct_col0 = 0;
    // Stream-packed feed observability (see ShardStats).
    std::uint64_t flushes = 0;
    std::uint64_t packed_steps = 0;
    std::uint64_t gather_records = 0;
    std::uint64_t scalar_records = 0;
};

class PredictionService
{
  public:
    explicit PredictionService(const ServiceConfig& cfg);
    ~PredictionService();

    unsigned shards() const
    {
        return static_cast<unsigned>(shards_.size());
    }

    /** Owning shard of @p stream (stable for the service's life). */
    unsigned
    shardOf(std::uint64_t stream) const
    {
        return static_cast<unsigned>(mixStreamId(stream)
                                     % shards_.size());
    }

    /** Thread-safe producer entry point. */
    void
    ingest(std::uint64_t stream, Value value, std::uint64_t tick_ns)
    {
        shards_[shardOf(stream)]->enqueue(stream, value, tick_ns);
    }

    /**
     * Drain every shard queue once, in parallel on the pool.
     * @p now_ns stamps the latency histogram. Returns total records
     * fed to the kernels by this call.
     */
    std::size_t pump(std::uint64_t now_ns);

    ServiceStats stats() const;
    /** Merged ingest-to-predict latency across shards. */
    LatencyHistogram latency() const;
    /** Merged per-drain batch-size distribution across shards. */
    LatencyHistogram drainBatchRecords() const;

    /** Per-stream level-1 state, wherever it lives. Quiescent only. */
    std::optional<StreamState> streamState(std::uint64_t stream) const;

    /**
     * Serialize every known stream's state to @p path as a VPT2
     * container (atomic temp-file/rename write). Quiescent only.
     */
    void snapshotTo(const std::string& path) const;

    /**
     * Reinstall stream state from a snapshotTo() file. Geometry must
     * match this service's kernels; streams land in their owning
     * shard's spill area and resume on their next update.
     * @throws TraceIoError on a corrupt or mismatched snapshot.
     */
    void restoreFrom(const std::string& path);

  private:
    ServiceConfig cfg_;
    std::vector<std::unique_ptr<Shard>> shards_;
    harness::ThreadPool pool_;
};

} // namespace vpred::service

#endif // DFCM_SERVICE_PREDICTION_SERVICE_HH
