/**
 * @file
 * The always-on sharded prediction service. repro-lint: hot-path
 *
 * Owns one Shard per configured core, routes every (stream, value)
 * update to its owning shard by a mixed hash of the stream id, and
 * pumps all shard queues in parallel on the harness ThreadPool. The
 * service is long-lived: state accumulates across pump() calls
 * (shards feed the fused multi-geometry kernels incrementally and
 * spill/restore cold streams), so millions of concurrent streams
 * are served from bounded resident table space.
 *
 * Ingest is producer-registered: each producer thread obtains a
 * Producer token (registerProducer()) that names its private SPSC
 * ring in every shard, then tryIngest()s updates lock-free. A full
 * ring is a retriable backpressure status — the producer decides
 * whether to retry, yield or drop, and accounts the wait through
 * noteBlocked() so blocked time is observable instead of folded
 * into ingest-to-predict latency. flush() publishes any partial
 * batch (call it when a producer goes idle so records never
 * strand). Per-stream ordering holds as long as each stream is fed
 * by one producer — the same single-writer discipline the old mutex
 * queue required of callers that cared about order.
 *
 * Snapshots serialize every known stream's relocatable level-1
 * state into a VPT2 container (the PR-3 trace store format): one
 * fixed-size block of TraceRecords per stream, written atomically
 * via TraceStore's temp-file/rename discipline and restored through
 * the zero-copy mmap path.
 *
 * Threading: tryIngest()/flush()/noteBlocked() are hot-path and
 * lock-free; each Producer token must be used by one thread at a
 * time. registerProducer()/unregisterProducer() are cold-path and
 * internally serialized (safe concurrently with ingest and pump).
 * pump() runs drains in parallel (one task per shard — a shard is
 * never drained by two threads at once) and must not run
 * concurrently with itself, snapshots or state queries.
 */

#ifndef DFCM_SERVICE_PREDICTION_SERVICE_HH
#define DFCM_SERVICE_PREDICTION_SERVICE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>  // registration cold path; repro-lint: allow(concurrency)
#include <optional>
#include <string>
#include <vector>

#include "harness/parallel_sweep.hh"
#include "service/shard.hh"

namespace vpred::service
{

/** Aggregate of all shard stats, plus the merged latency view. */
struct ServiceStats
{
    std::uint64_t ingested = 0;
    std::uint64_t predictions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t restores = 0;
    std::uint64_t resident_streams = 0;
    std::uint64_t spilled_streams = 0;
    /** Correct predictions for the kernels' first level-2 column. */
    std::uint64_t correct_col0 = 0;
    // Stream-packed feed observability (see ShardStats).
    std::uint64_t flushes = 0;
    std::uint64_t packed_steps = 0;
    std::uint64_t gather_records = 0;
    std::uint64_t scalar_records = 0;
    // Adaptive-drain observability (summed across shards).
    std::uint64_t max_backlog = 0;  //!< max over shards, not summed
    std::uint64_t quota_grows = 0;
    std::uint64_t quota_shrinks = 0;
};

/** Ingest-fabric counters aggregated across shards and producers. */
struct IngestStats
{
    std::uint64_t producers_registered = 0;  //!< lifetime total
    std::uint64_t producers_active = 0;
    std::uint64_t publishes = 0;         //!< release stores paid
    std::uint64_t published_records = 0; //!< records those covered
    std::uint64_t full_events = 0;       //!< backpressure rejections
    std::uint64_t blocked_events = 0;    //!< noteBlocked() calls
    std::uint64_t blocked_ns = 0;        //!< accounted producer waits
};

/**
 * Move-only token naming one registered producer's rings. Obtained
 * from PredictionService::registerProducer(); a default-constructed
 * or moved-from token is invalid and must not be used to ingest.
 */
class Producer
{
  public:
    Producer() = default;
    Producer(Producer&& other) noexcept : id_(other.id_)
    {
        other.id_ = kInvalid;
    }
    Producer&
    operator=(Producer&& other) noexcept
    {
        id_ = other.id_;
        other.id_ = kInvalid;
        return *this;
    }
    Producer(const Producer&) = delete;
    Producer& operator=(const Producer&) = delete;

    bool valid() const { return id_ != kInvalid; }

  private:
    friend class PredictionService;
    static constexpr std::size_t kInvalid = ~std::size_t{0};
    explicit Producer(std::size_t id) : id_(id) {}
    std::size_t id_ = kInvalid;
};

class PredictionService
{
  public:
    explicit PredictionService(const ServiceConfig& cfg);
    ~PredictionService();

    unsigned shards() const
    {
        return static_cast<unsigned>(shards_.size());
    }

    /** Owning shard of @p stream (stable for the service's life). */
    unsigned
    shardOf(std::uint64_t stream) const
    {
        return static_cast<unsigned>(mixStreamId(stream)
                                     % shards_.size());
    }

    /**
     * Register a producer: allocates one SPSC ring per shard and
     * returns the token naming them. Safe from any thread, including
     * concurrently with ingest and pump.
     * @throws std::length_error once the lifetime cap
     *         (ServiceConfig::max_producers) is reached — ring slots
     *         are never reused, so the cap bounds fabric memory.
     */
    Producer registerProducer();

    /**
     * Flush and retire @p producer's rings. Already-published
     * records keep draining (nothing is lost — safe against a
     * concurrent drain); the token becomes invalid. The ring slots
     * are not reused.
     */
    void unregisterProducer(Producer& producer);

    /**
     * Lock-free producer entry point: append one update to
     * @p producer's ring in the owning shard. Returns false — the
     * retriable backpressure status — when that ring is full; retry
     * after the next pump, or account the wait via noteBlocked().
     */
    [[nodiscard]] bool
    tryIngest(const Producer& producer, std::uint64_t stream,
              Value value, std::uint64_t tick_ns)
    {
        return shards_[shardOf(stream)]->tryEnqueue(
                producer.id_, stream, value, tick_ns);
    }

    /** Publish @p producer's partial batches in every shard — the
     *  flush-on-ingest-idle path. */
    void
    flush(const Producer& producer)
    {
        for (const auto& shard : shards_)
            shard->flushProducer(producer.id_);
    }

    /** Account @p ns of producer-side backpressure wait (shows up in
     *  ingestStats(), distinct from ingest-to-predict latency). */
    void
    noteBlocked(const Producer&, std::uint64_t ns)
    {
        blocked_events_.fetch_add(1, std::memory_order_relaxed);
        blocked_ns_.fetch_add(ns, std::memory_order_relaxed);
    }

    /**
     * Drain every shard's rings once, in parallel on the pool.
     * @p now_ns stamps the latency histogram. Returns total records
     * fed to the kernels by this call.
     */
    std::size_t pump(std::uint64_t now_ns);

    ServiceStats stats() const;
    /** Ingest-fabric counters (safe anytime). */
    IngestStats ingestStats() const;
    /** Merged ingest-to-predict latency across shards. */
    LatencyHistogram latency() const;
    /** Merged per-drain batch-size distribution across shards. */
    LatencyHistogram drainBatchRecords() const;

    /** Per-stream level-1 state, wherever it lives. Quiescent only. */
    std::optional<StreamState> streamState(std::uint64_t stream) const;

    /**
     * Serialize every known stream's state to @p path as a VPT2
     * container (atomic temp-file/rename write). Quiescent only.
     */
    void snapshotTo(const std::string& path) const;

    /**
     * Reinstall stream state from a snapshotTo() file. Geometry must
     * match this service's kernels; streams land in their owning
     * shard's spill area and resume on their next update.
     * @throws TraceIoError on a corrupt or mismatched snapshot.
     */
    void restoreFrom(const std::string& path);

  private:
    ServiceConfig cfg_;
    std::vector<std::unique_ptr<Shard>> shards_;
    harness::ThreadPool pool_;

    // Producer registration (cold path, hence the lock).
    std::mutex register_mutex_;  // repro-lint: allow(concurrency)
    /** Incremented under register_mutex_; atomic so ingestStats()
     *  can read it lock-free. */
    std::atomic<std::size_t> next_producer_{0};
    std::atomic<std::uint64_t> active_producers_{0};
    std::atomic<std::uint64_t> blocked_events_{0};
    std::atomic<std::uint64_t> blocked_ns_{0};
};

} // namespace vpred::service

#endif // DFCM_SERVICE_PREDICTION_SERVICE_HH
