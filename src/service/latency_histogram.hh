/**
 * @file
 * Log-bucketed latency histogram for the prediction service.
 *
 * Ingest-to-predict latencies span nanoseconds (drained on the next
 * pump) to milliseconds (deep queues), so buckets are powers of two
 * of nanoseconds: bucket i counts samples in [2^i, 2^(i+1)) ns.
 * Recording is O(1) with no allocation; quantiles interpolate within
 * the containing bucket, which is accurate to a factor of two — the
 * right fidelity for a p50/p99 gate, at a cost that can sit on the
 * service's hot path.
 */

#ifndef DFCM_SERVICE_LATENCY_HISTOGRAM_HH
#define DFCM_SERVICE_LATENCY_HISTOGRAM_HH

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace vpred::service
{

class LatencyHistogram
{
  public:
    static constexpr std::size_t kBuckets = 64;

    void
    record(std::uint64_t ns)
    {
        ++buckets_[ns == 0 ? 0 : std::bit_width(ns) - 1];
        ++count_;
    }

    void
    merge(const LatencyHistogram& other)
    {
        for (std::size_t i = 0; i < kBuckets; ++i)
            buckets_[i] += other.buckets_[i];
        count_ += other.count_;
    }

    std::uint64_t count() const { return count_; }

    /**
     * The @p q quantile (0 < q <= 1) in nanoseconds, linearly
     * interpolated inside the containing bucket; 0 when empty.
     */
    std::uint64_t
    quantileNs(double q) const
    {
        if (count_ == 0)
            return 0;
        const double target = q * static_cast<double>(count_);
        double seen = 0.0;
        for (std::size_t i = 0; i < kBuckets; ++i) {
            const double n = static_cast<double>(buckets_[i]);
            if (seen + n >= target && n > 0.0) {
                const std::uint64_t lo = i == 0 ? 0 : (1ull << i);
                const std::uint64_t width = i == 0 ? 2 : (1ull << i);
                const double frac = (target - seen) / n;
                return lo
                        + static_cast<std::uint64_t>(
                                frac * static_cast<double>(width));
            }
            seen += n;
        }
        return 1ull << (kBuckets - 1);
    }

  private:
    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
};

} // namespace vpred::service

#endif // DFCM_SERVICE_LATENCY_HISTOGRAM_HH
