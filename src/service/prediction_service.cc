// repro-lint: hot-path (pump and the drain fan-out live here; the
// producer-registration lock below is the explicitly-allowed cold
// path)

#include "service/prediction_service.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "core/trace_io.hh"
#include "harness/trace_store.hh"
#include "workloads/workload.hh"

namespace vpred::service
{

namespace
{

constexpr const char* kSnapshotWorkload = "service-snapshot";

/** Exact kernel geometry as a string, so restore can reject a
 *  snapshot whose column set differs even when SIMD padding makes
 *  the per-stream block length coincide. */
std::string
geometryTag(const ServiceConfig& cfg)
{
    std::string tag = "l1=" + std::to_string(cfg.l1_bits) + ";l2=";
    for (std::size_t i = 0; i < cfg.l2_bits.size(); ++i) {
        if (i != 0)
            tag += ',';
        tag += std::to_string(cfg.l2_bits[i]);
    }
    return tag;
}

unsigned
resolveShards(unsigned configured)
{
    if (configured != 0)
        return configured;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : std::min(hw, 256u);
}

} // namespace

PredictionService::PredictionService(const ServiceConfig& cfg)
    : cfg_(cfg), pool_(resolveShards(cfg.shards))
{
    const unsigned n = resolveShards(cfg.shards);
    shards_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        shards_.push_back(std::make_unique<Shard>(cfg));
}

PredictionService::~PredictionService() = default;

Producer
PredictionService::registerProducer()
{
    // Registration is the cold path: the lock serializes slot
    // assignment only; ingest and pump never take it.
    const std::lock_guard<std::mutex> lock(  // repro-lint: allow(concurrency)
            register_mutex_);
    const std::size_t id =
            next_producer_.load(std::memory_order_relaxed);
    if (id >= cfg_.max_producers)
        throw std::length_error(
                "producer limit reached (REPRO_SERVICE_RING_PRODUCERS="
                + std::to_string(cfg_.max_producers)
                + "); ring slots are never reused");
    next_producer_.store(id + 1, std::memory_order_relaxed);
    for (const auto& shard : shards_)
        shard->addProducerRing(id);
    active_producers_.fetch_add(1, std::memory_order_relaxed);
    return Producer(id);
}

void
PredictionService::unregisterProducer(Producer& producer)
{
    if (!producer.valid())
        return;
    // Publish any partial batches so nothing strands, then retire
    // the token. The rings stay sweepable — a drain running right
    // now (or later) still consumes every published record.
    flush(producer);
    producer.id_ = Producer::kInvalid;
    active_producers_.fetch_sub(1, std::memory_order_relaxed);
}

std::size_t
PredictionService::pump(std::uint64_t now_ns)
{
    std::vector<std::size_t> drained(shards_.size(), 0);
    pool_.parallelFor(shards_.size(), [&](std::size_t i) {
        drained[i] = shards_[i]->drain(now_ns);
    });
    std::size_t total = 0;
    for (const std::size_t d : drained)
        total += d;
    return total;
}

ServiceStats
PredictionService::stats() const
{
    ServiceStats agg;
    for (const auto& shard : shards_) {
        const ShardStats& s = shard->stats();
        agg.ingested += s.ingested;
        agg.predictions += s.predictions;
        agg.evictions += s.evictions;
        agg.restores += s.restores;
        if (!s.correct.empty())
            agg.correct_col0 += s.correct[0];
        agg.flushes += s.flushes;
        agg.packed_steps += s.packed_steps;
        agg.gather_records += s.gather_records;
        agg.scalar_records += s.scalar_records;
        agg.max_backlog = std::max(agg.max_backlog, s.max_backlog);
        agg.quota_grows += s.quota_grows;
        agg.quota_shrinks += s.quota_shrinks;
        agg.resident_streams += shard->residentStreams();
        agg.spilled_streams += shard->spilledStreams();
    }
    return agg;
}

IngestStats
PredictionService::ingestStats() const
{
    IngestStats agg;
    agg.producers_registered =
            next_producer_.load(std::memory_order_relaxed);
    agg.producers_active =
            active_producers_.load(std::memory_order_relaxed);
    for (const auto& shard : shards_) {
        const RingCounters c = shard->ringCounters();
        agg.publishes += c.publishes;
        agg.published_records += c.published_records;
        agg.full_events += c.full_events;
    }
    agg.blocked_events =
            blocked_events_.load(std::memory_order_relaxed);
    agg.blocked_ns = blocked_ns_.load(std::memory_order_relaxed);
    return agg;
}

LatencyHistogram
PredictionService::latency() const
{
    LatencyHistogram merged;
    for (const auto& shard : shards_)
        merged.merge(shard->latency());
    return merged;
}

LatencyHistogram
PredictionService::drainBatchRecords() const
{
    LatencyHistogram merged;
    for (const auto& shard : shards_)
        merged.merge(shard->drainBatchRecords());
    return merged;
}

std::optional<StreamState>
PredictionService::streamState(std::uint64_t stream) const
{
    return shards_[shardOf(stream)]->streamState(stream);
}

void
PredictionService::snapshotTo(const std::string& path) const
{
    ValueTrace blocks;
    for (const auto& shard : shards_)
        shard->appendSnapshot(blocks);

    Vpt2Meta meta;
    meta.workload = kSnapshotWorkload;
    // The block length rides in the scale field so restore can
    // validate geometry before touching a record.
    meta.scale = static_cast<double>(shards_[0]->blockRecords());
    meta.generator_version = workloads::kTraceGeneratorVersion;
    meta.instructions = blocks.size() / shards_[0]->blockRecords();
    meta.output = geometryTag(cfg_);

    // Same atomic discipline as the trace store: temp file in the
    // target directory, then rename — a snapshot is always either
    // absent or complete.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::out | std::ios::binary
                                       | std::ios::trunc);
        if (!out)
            throw TraceIoError("cannot open " + tmp + " for writing");
        writeTraceVpt2(out, blocks, meta);
        out.flush();
        if (!out)
            throw TraceIoError("short write to " + tmp);
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::error_code ec2;
        std::filesystem::remove(tmp, ec2);
        throw TraceIoError("cannot install snapshot " + path + ": "
                           + ec.message());
    }
}

void
PredictionService::restoreFrom(const std::string& path)
{
    const harness::MappedTrace mapped =
            harness::TraceStore::mapFile(path);
    const std::size_t block = shards_[0]->blockRecords();
    if (mapped.meta().workload != kSnapshotWorkload
        || mapped.meta().scale != static_cast<double>(block)
        || mapped.meta().output != geometryTag(cfg_))
        throw TraceIoError("not a service snapshot with this geometry: "
                           + path);
    const std::span<const TraceRecord> recs = mapped.records();
    if (recs.size() % block != 0)
        throw TraceIoError("snapshot record count is not a whole"
                           " number of stream blocks: "
                           + path);

    StreamState state;
    state.hists.resize(block - 1);
    for (std::size_t off = 0; off < recs.size(); off += block) {
        const std::uint64_t stream = recs[off].pc;
        state.last = recs[off].value;
        for (std::size_t c = 1; c < block; ++c) {
            if (recs[off + c].pc != stream)
                throw TraceIoError("torn stream block in snapshot "
                                   + path);
            state.hists[c - 1] =
                    static_cast<std::uint32_t>(recs[off + c].value);
        }
        shards_[shardOf(stream)]->installStream(stream, state);
    }
}

} // namespace vpred::service
