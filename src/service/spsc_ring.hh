/**
 * @file
 * Bounded single-producer/single-consumer ring for the service's
 * lock-free ingest fabric. repro-lint: hot-path
 *
 * Each registered producer owns one ring per shard, so every ring has
 * exactly one writer (that producer's thread) and exactly one reader
 * (whichever thread runs that shard's drain — PredictionService runs
 * one drain per shard at a time). That pairing is what makes the ring
 * correct with nothing stronger than acquire/release on two indices:
 *
 *   - the producer writes records into slots, then *publishes* them
 *     with one release store of the head index; the consumer's
 *     acquire load of the head makes the slot writes visible
 *     (release/acquire pairs on head_pub_);
 *   - the consumer copies published records out, then frees the slots
 *     with one release store of the tail index; the producer's
 *     acquire load of the tail makes the reuse safe.
 *
 * Publishing is *batched*: pushes advance a producer-local head and
 * only every publish_batch records pay the release store (and the
 * cache-line ping to the consumer). publish() flushes the remainder —
 * the flush-on-ingest-idle path — and tryPush() self-publishes when
 * the ring fills, so a full ring always exposes everything it holds
 * and records never strand behind an unpublished head.
 *
 * Backpressure is explicit: tryPush() returns false when the ring is
 * full after a tail refresh, and the producer decides whether to
 * retry, yield, or drop. There is no blocking and no convoying — a
 * stalled consumer costs exactly one failed push, not a queue of
 * producers parked on a mutex.
 *
 * Capacity is a power of two; indices are free-running 64-bit
 * counters (head - tail is the occupancy; wraparound of the counters
 * themselves would take centuries at any realistic rate).
 */

#ifndef DFCM_SERVICE_SPSC_RING_HH
#define DFCM_SERVICE_SPSC_RING_HH

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "core/types.hh"

namespace vpred::service
{

/** One ingested update, stamped by the producer for the
 *  ingest-to-predict latency histogram. */
struct Update
{
    std::uint64_t stream;
    Value value;
    std::uint64_t tick_ns;
};

static_assert(std::is_trivially_copyable_v<Update>);

/** Producer-side counters of one ring, read via SpscRing accessors
 *  (relaxed atomics, so any thread may observe them at any time). */
struct RingCounters
{
    std::uint64_t publishes = 0;         //!< release stores paid
    std::uint64_t published_records = 0; //!< records those covered
    std::uint64_t full_events = 0;       //!< tryPush rejections
};

class SpscRing
{
  public:
    /**
     * @param capacity Slot count; must be a power of two.
     * @param publish_batch Records per release store (1 = publish
     *        every push); must be in [1, capacity].
     */
    SpscRing(std::size_t capacity, std::size_t publish_batch)
        : buf_(capacity), mask_(capacity - 1),
          publish_batch_(publish_batch)
    {
        assert(capacity > 0 && (capacity & mask_) == 0);
        assert(publish_batch >= 1 && publish_batch <= capacity);
    }

    // --- producer side (one thread) ---------------------------------

    /**
     * Append @p u, publishing automatically once publish_batch
     * records are pending. Returns false — the retriable
     * backpressure status — when the ring is full even after
     * refreshing the cached tail; the failed push also publishes
     * everything pending, so the consumer can always see (and free)
     * the whole backlog.
     */
    [[nodiscard]] bool
    tryPush(const Update& u)
    {
        if (head_ - tail_cache_ == buf_.size()) {
            tail_cache_ = tail_.load(std::memory_order_acquire);
            if (head_ - tail_cache_ == buf_.size()) {
                publish();
                counters_.full_events.fetch_add(
                        1, std::memory_order_relaxed);
                return false;
            }
        }
        buf_[head_ & mask_] = u;
        ++head_;
        if (head_ - head_pub_.load(std::memory_order_relaxed)
            >= publish_batch_)
            publish();
        return true;
    }

    /** Release-store every pending record to the consumer (the
     *  flush-on-idle path). No-op when nothing is pending. */
    void
    publish()
    {
        const std::uint64_t pending =
                head_ - head_pub_.load(std::memory_order_relaxed);
        if (pending == 0)
            return;
        head_pub_.store(head_, std::memory_order_release);
        counters_.publishes.fetch_add(1, std::memory_order_relaxed);
        counters_.published_records.fetch_add(
                pending, std::memory_order_relaxed);
    }

    /** Records pushed but not yet published (producer thread only). */
    std::uint64_t
    unpublished() const
    {
        return head_ - head_pub_.load(std::memory_order_relaxed);
    }

    // --- consumer side (one thread) ---------------------------------

    /**
     * Copy up to @p max published records into @p out (appending) and
     * free their slots. Returns the number copied; 0 when nothing is
     * published.
     */
    std::size_t
    popInto(std::vector<Update>& out, std::size_t max)
    {
        const std::uint64_t tail =
                tail_.load(std::memory_order_relaxed);
        std::uint64_t avail = head_cache_ - tail;
        if (avail == 0) {
            head_cache_ = head_pub_.load(std::memory_order_acquire);
            avail = head_cache_ - tail;
            if (avail == 0)
                return 0;
        }
        const std::size_t n = static_cast<std::size_t>(
                avail < max ? avail : max);
        // At most two contiguous segments (the copy may wrap), each a
        // straight memcpy — Update is trivially copyable, and a
        // per-record push_back would pay a capacity check per record.
        const std::size_t start =
                static_cast<std::size_t>(tail) & mask_;
        const std::size_t first =
                std::min(n, buf_.size() - start);
        const std::size_t base = out.size();
        out.resize(base + n);
        std::memcpy(out.data() + base, buf_.data() + start,
                    first * sizeof(Update));
        if (first < n)
            std::memcpy(out.data() + base + first, buf_.data(),
                        (n - first) * sizeof(Update));
        tail_.store(tail + n, std::memory_order_release);
        return n;
    }

    /** Published records not yet consumed. Exact from the consumer
     *  thread; from any other thread the two indices cannot be read
     *  as one snapshot, so the difference is clamped to
     *  [0, capacity()] and is approximate. */
    std::size_t
    occupancy() const
    {
        // Tail before head: tail never passes the published head, so
        // with a fresh head the difference cannot go negative — but a
        // *stale* tail can overstate it (the consumer may drain many
        // batches between the two loads), hence the capacity clamp.
        const std::uint64_t tail =
                tail_.load(std::memory_order_acquire);
        const std::uint64_t head =
                head_pub_.load(std::memory_order_acquire);
        const std::uint64_t occ = head > tail ? head - tail : 0;
        return static_cast<std::size_t>(
                std::min<std::uint64_t>(occ, buf_.size()));
    }

    std::size_t capacity() const { return buf_.size(); }

    /** Snapshot of the producer-side counters (relaxed reads). */
    RingCounters
    counters() const
    {
        return {counters_.publishes.load(std::memory_order_relaxed),
                counters_.published_records.load(
                        std::memory_order_relaxed),
                counters_.full_events.load(std::memory_order_relaxed)};
    }

  private:
    std::vector<Update> buf_;
    std::size_t mask_;
    std::size_t publish_batch_;

    struct AtomicCounters
    {
        std::atomic<std::uint64_t> publishes{0};
        std::atomic<std::uint64_t> published_records{0};
        std::atomic<std::uint64_t> full_events{0};
    };

    // Producer-owned fields on their own cache line: the local head,
    // the cached consumer tail (refreshed only when the ring looks
    // full), and the stats counters only the producer writes.
    alignas(64) std::uint64_t head_ = 0;
    std::uint64_t tail_cache_ = 0;
    AtomicCounters counters_;

    // The two shared indices each get a dedicated cache line so a
    // publish never invalidates the consumer's tail line and a
    // consume never invalidates the producer's head line.
    alignas(64) std::atomic<std::uint64_t> head_pub_{0};
    alignas(64) std::atomic<std::uint64_t> tail_{0};

    // Consumer-owned: the cached published head (refreshed only when
    // the ring looks empty).
    alignas(64) std::uint64_t head_cache_ = 0;
};

} // namespace vpred::service

#endif // DFCM_SERVICE_SPSC_RING_HH
