/**
 * @file
 * Configuration for the always-on prediction service.
 *
 * All knobs come from REPRO_SERVICE_* environment variables, parsed
 * through core/env_util.hh from day one: unset or empty selects the
 * default, a malformed or out-of-range value is a loud exit(2) —
 * never a silent fallback.
 */

#ifndef DFCM_SERVICE_SERVICE_CONFIG_HH
#define DFCM_SERVICE_SERVICE_CONFIG_HH

#include <cstddef>
#include <string>
#include <vector>

namespace vpred::service
{

/**
 * Geometry and sizing of one PredictionService instance.
 *
 * The kernel geometry (l1_bits per shard, the l2_bits column,
 * value/stride widths, FS R-k shift) is program-chosen, not an env
 * knob: it is the experiment under test. The deployment knobs —
 * shard count, ingest batch threshold — are environment-driven.
 */
struct ServiceConfig
{
    /** Shards (state-owning cores). 0 = one per hardware thread. */
    unsigned shards = 0;
    /** log2(resident streams per shard): each shard's kernel owns
     *  2^l1_bits level-1 entries; colder streams are spilled. */
    unsigned l1_bits = 14;
    /** Level-2 sizes evaluated per stream (one kernel column each). */
    std::vector<unsigned> l2_bits = {12};
    unsigned value_bits = 32;
    unsigned stride_bits = 32;
    unsigned hash_shift = 5;
    /** Queue depth at which a shard prefers to be drained; pump()
     *  always drains everything, this only sizes reservations. */
    std::size_t batch_records = 1024;

    /**
     * Defaults overridden by the environment:
     *   REPRO_SERVICE_SHARDS  shard count, 0 = hardware threads
     *                         (0..256; malformed values are fatal)
     *   REPRO_SERVICE_BATCH   batch threshold (1..2^20)
     * Resolution of shards=0 happens in PredictionService, so a
     * config round-trips unchanged.
     */
    static ServiceConfig fromEnv();
};

} // namespace vpred::service

#endif // DFCM_SERVICE_SERVICE_CONFIG_HH
