/**
 * @file
 * Configuration for the always-on prediction service.
 *
 * All knobs come from REPRO_SERVICE_* environment variables, parsed
 * through core/env_util.hh from day one: unset or empty selects the
 * default, a malformed or out-of-range value is a loud exit(2) —
 * never a silent fallback.
 */

#ifndef DFCM_SERVICE_SERVICE_CONFIG_HH
#define DFCM_SERVICE_SERVICE_CONFIG_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/cpu_features.hh"

namespace vpred::service
{

/**
 * Geometry and sizing of one PredictionService instance.
 *
 * The kernel geometry (l1_bits per shard, the l2_bits column,
 * value/stride widths, FS R-k shift) is program-chosen, not an env
 * knob: it is the experiment under test. The deployment knobs —
 * shard count, ingest-fabric sizing, adaptive-drain bounds — are
 * environment-driven.
 */
struct ServiceConfig
{
    /** Shards (state-owning cores). 0 = one per hardware thread. */
    unsigned shards = 0;
    /** log2(resident streams per shard): each shard's kernel owns
     *  2^l1_bits level-1 entries; colder streams are spilled. */
    unsigned l1_bits = 14;
    /** Level-2 sizes evaluated per stream (one kernel column each). */
    std::vector<unsigned> l2_bits = {12};
    unsigned value_bits = 32;
    unsigned stride_bits = 32;
    unsigned hash_shift = 5;
    /** Initial reservation for the drain-side staging vectors. */
    std::size_t batch_records = 1024;

    // Lock-free ingest fabric (one SPSC ring per producer per shard).
    /** Slots per ring; must be a power of two. */
    std::size_t ring_capacity = 4096;
    /** Records a producer accumulates per release-store publish;
     *  flush-on-idle covers the remainder. */
    std::size_t publish_batch = 32;
    /** Lifetime cap on registered producers (ring slots are never
     *  reused, so this bounds fabric memory). */
    unsigned max_producers = 16;
    /** Adaptive sweep quota bounds: drain() doubles its per-call
     *  record quota while rings run hot and halves it when the
     *  per-drain ingest-to-predict p99 exceeds the SLO. */
    std::size_t sweep_quota_min = 4096;
    std::size_t sweep_quota_max = std::size_t{1} << 20;
    /** Per-drain p99 ingest-to-predict SLO driving quota shrink. */
    std::uint64_t drain_slo_ns = 50'000'000;

    /** Packed-feed backend override; nullopt = activeSimdBackend()
     *  at shard construction. Program-chosen (the scaling sweep sets
     *  it per point), never an env knob. */
    std::optional<SimdBackend> backend;

    /**
     * Defaults overridden by the environment:
     *   REPRO_SERVICE_SHARDS          shard count, 0 = hardware
     *                                 threads (0..256)
     *   REPRO_SERVICE_BATCH           staging reservation (1..2^20)
     *   REPRO_SERVICE_RING_CAP        ring slots, power of two
     *                                 (2..2^20)
     *   REPRO_SERVICE_RING_PUBLISH    publish batch
     *                                 (1..ring_capacity)
     *   REPRO_SERVICE_RING_PRODUCERS  producer cap (1..1024)
     *   REPRO_SERVICE_RING_QUOTA_MIN  sweep quota floor (64..2^24)
     *   REPRO_SERVICE_RING_QUOTA_MAX  sweep quota ceiling
     *                                 (quota_min..2^24)
     *   REPRO_SERVICE_RING_SLO_NS     drain p99 SLO (1..10^12)
     * Malformed or out-of-range values are fatal (exit 2).
     * Resolution of shards=0 happens in PredictionService, so a
     * config round-trips unchanged.
     */
    static ServiceConfig fromEnv();
};

} // namespace vpred::service

#endif // DFCM_SERVICE_SERVICE_CONFIG_HH
