/**
 * @file
 * Open-addressing map from 64-bit stream ids to dense kernel slots.
 *
 * A shard's kernel owns 2^l1_bits level-1 entries; resident streams
 * are assigned dense entry indices so the kernel's bank stays fully
 * utilized regardless of how sparse the stream-id space is. The map
 * is the shard's hot lookup (one probe sequence per ingested
 * record), so it is a flat power-of-two table with linear probing
 * and backward-shift deletion — no tombstones accumulate across the
 * millions of evict/insert cycles of a long-running service, and
 * iteration order never matters (lookups only).
 */

#ifndef DFCM_SERVICE_SLOT_MAP_HH
#define DFCM_SERVICE_SLOT_MAP_HH

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace vpred::service
{

/** SplitMix64 finalizer: stream ids are often small sequential
 *  integers, so the raw id is a terrible probe start. */
inline std::uint64_t
mixStreamId(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

class SlotMap
{
  public:
    /**
     * @param max_entries Upper bound on simultaneously-present keys
     * (the shard's 2^l1_bits residency). The table is sized to stay
     * at most half full, so probe chains stay short.
     */
    explicit SlotMap(std::size_t max_entries)
    {
        std::size_t buckets = 16;
        while (buckets < max_entries * 2)
            buckets *= 2;
        mask_ = buckets - 1;
        keys_.assign(buckets, 0);
        slots_.assign(buckets, 0);
        used_.assign(buckets, 0);
    }

    std::size_t size() const { return size_; }

    /** Slot for @p stream, or nullopt when not resident. */
    std::optional<std::uint32_t>
    find(std::uint64_t stream) const
    {
        for (std::size_t b = mixStreamId(stream) & mask_; used_[b];
             b = (b + 1) & mask_) {
            if (keys_[b] == stream)
                return slots_[b];
        }
        return std::nullopt;
    }

    /** Insert @p stream -> @p slot. The key must not be present
     *  (asserted in debug builds). Grows to stay at most half full,
     *  so the map also serves the unbounded spill index. */
    void
    insert(std::uint64_t stream, std::uint32_t slot)
    {
        if ((size_ + 1) * 2 > mask_ + 1)
            grow();
        std::size_t b = mixStreamId(stream) & mask_;
        while (used_[b]) {
            assert(keys_[b] != stream);
            b = (b + 1) & mask_;
        }
        keys_[b] = stream;
        slots_[b] = slot;
        used_[b] = 1;
        ++size_;
    }

    /** Remove @p stream (must be present). Backward-shift deletion
     *  keeps every remaining key reachable without tombstones. */
    void
    erase(std::uint64_t stream)
    {
        std::size_t b = mixStreamId(stream) & mask_;
        while (!used_[b] || keys_[b] != stream)
            b = (b + 1) & mask_;

        std::size_t hole = b;
        for (std::size_t next = (hole + 1) & mask_; used_[next];
             next = (next + 1) & mask_) {
            // A key may fill the hole only if its home bucket is not
            // inside (hole, next] — the classic cyclic-range test.
            const std::size_t home = mixStreamId(keys_[next]) & mask_;
            const bool movable = ((next - home) & mask_)
                    >= ((next - hole) & mask_);
            if (movable) {
                keys_[hole] = keys_[next];
                slots_[hole] = slots_[next];
                hole = next;
            }
        }
        used_[hole] = 0;
        --size_;
    }

  private:
    void
    grow()
    {
        const std::size_t buckets = (mask_ + 1) * 2;
        std::vector<std::uint64_t> keys(buckets, 0);
        std::vector<std::uint32_t> slots(buckets, 0);
        std::vector<std::uint8_t> used(buckets, 0);
        const std::size_t mask = buckets - 1;
        for (std::size_t i = 0; i <= mask_; ++i) {
            if (!used_[i])
                continue;
            std::size_t b = mixStreamId(keys_[i]) & mask;
            while (used[b])
                b = (b + 1) & mask;
            keys[b] = keys_[i];
            slots[b] = slots_[i];
            used[b] = 1;
        }
        keys_ = std::move(keys);
        slots_ = std::move(slots);
        used_ = std::move(used);
        mask_ = mask;
    }

    std::vector<std::uint64_t> keys_;
    std::vector<std::uint32_t> slots_;
    std::vector<std::uint8_t> used_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
};

} // namespace vpred::service

#endif // DFCM_SERVICE_SLOT_MAP_HH
