/**
 * @file
 * Open-addressing map from 64-bit stream ids to dense kernel slots.
 *
 * A shard's kernel owns 2^l1_bits level-1 entries; resident streams
 * are assigned dense entry indices so the kernel's bank stays fully
 * utilized regardless of how sparse the stream-id space is. The map
 * is the shard's hot lookup (one probe sequence per ingested
 * record), so it is a flat power-of-two table with linear probing
 * and backward-shift deletion — no tombstones accumulate across the
 * millions of evict/insert cycles of a long-running service, and
 * iteration order never matters (lookups only).
 */

#ifndef DFCM_SERVICE_SLOT_MAP_HH
#define DFCM_SERVICE_SLOT_MAP_HH

#include <cstddef>
#include <cstdint>
#include <optional>

#include "core/table_arena.hh"

namespace vpred::service
{

/** SplitMix64 finalizer: stream ids are often small sequential
 *  integers, so the raw id is a terrible probe start. */
inline std::uint64_t
mixStreamId(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

class SlotMap
{
  public:
    /**
     * @param max_entries Upper bound on simultaneously-present keys
     * (the shard's 2^l1_bits residency). The table is sized to stay
     * at most half full, so probe chains stay short.
     */
    explicit SlotMap(std::size_t max_entries)
    {
        std::size_t buckets = 16;
        while (buckets < max_entries * 2)
            buckets *= 2;
        mask_ = buckets - 1;
        buckets_.assign(buckets);
    }

    std::size_t size() const { return size_; }

    /** Slot for @p stream, or nullopt when not resident. */
    std::optional<std::uint32_t>
    find(std::uint64_t stream) const
    {
        for (std::size_t b = mixStreamId(stream) & mask_;
             buckets_[b].used; b = (b + 1) & mask_) {
            if (buckets_[b].key == stream)
                return buckets_[b].slot;
        }
        return std::nullopt;
    }

    /** Pull @p stream's home bucket toward the cache ahead of a
     *  find() — the spill index spans millions of streams, so a
     *  cold probe is a full DRAM round trip the drain loop can
     *  overlap with the records in front of it. */
    void
    prefetch(std::uint64_t stream) const
    {
        __builtin_prefetch(&buckets_[mixStreamId(stream) & mask_]);
    }

    /** Insert @p stream -> @p slot. Returns false (and changes
     *  nothing) when the key is already present — residency
     *  bookkeeping gone wrong must surface as a checkable status,
     *  not a corrupted table. Grows to stay at most half full, so
     *  the map also serves the unbounded spill index. */
    [[nodiscard]] bool
    insert(std::uint64_t stream, std::uint32_t slot)
    {
        if ((size_ + 1) * 2 > mask_ + 1)
            grow();
        std::size_t b = mixStreamId(stream) & mask_;
        while (buckets_[b].used) {
            if (buckets_[b].key == stream)
                return false;
            b = (b + 1) & mask_;
        }
        buckets_[b] = {stream, slot, 1};
        ++size_;
        return true;
    }

    /** Remove @p stream. Returns false when the key is not present
     *  (previously an infinite probe loop — absence now reports
     *  instead of hanging the drain). Backward-shift deletion keeps
     *  every remaining key reachable without tombstones. */
    [[nodiscard]] bool
    erase(std::uint64_t stream)
    {
        std::size_t b = mixStreamId(stream) & mask_;
        while (buckets_[b].key != stream || !buckets_[b].used) {
            if (!buckets_[b].used)
                return false;
            b = (b + 1) & mask_;
        }

        std::size_t hole = b;
        for (std::size_t next = (hole + 1) & mask_;
             buckets_[next].used; next = (next + 1) & mask_) {
            // A key may fill the hole only if its home bucket is not
            // inside (hole, next] — the classic cyclic-range test.
            const std::size_t home =
                    mixStreamId(buckets_[next].key) & mask_;
            const bool movable = ((next - home) & mask_)
                    >= ((next - hole) & mask_);
            if (movable) {
                buckets_[hole].key = buckets_[next].key;
                buckets_[hole].slot = buckets_[next].slot;
                hole = next;
            }
        }
        buckets_[hole].used = 0;
        --size_;
        return true;
    }

  private:
    // One 16-byte bucket per probe position: a cold lookup touches a
    // single cache line instead of separate key/slot/used arrays
    // (three lines) — the difference is the whole probe cost once
    // the spill index outgrows the last-level cache.
    struct Bucket
    {
        std::uint64_t key = 0;
        std::uint32_t slot = 0;
        std::uint8_t used = 0;
    };

    void
    grow()
    {
        const std::size_t buckets = (mask_ + 1) * 2;
        TableBuffer<Bucket> table(buckets);
        const std::size_t mask = buckets - 1;
        for (std::size_t i = 0; i <= mask_; ++i) {
            if (!buckets_[i].used)
                continue;
            std::size_t b = mixStreamId(buckets_[i].key) & mask;
            while (table[b].used)
                b = (b + 1) & mask;
            table[b] = buckets_[i];
        }
        buckets_ = std::move(table);
        mask_ = mask;
    }

    /** Arena-backed: the spill index's bucket array grows to tens of
     *  MiB at service scale, exactly the huge-page regime, and the
     *  mmap backing's lazy zero pages mean the drain thread that
     *  probes the table is also the thread that faults it in
     *  (first-touch NUMA placement). */
    TableBuffer<Bucket> buckets_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
};

} // namespace vpred::service

#endif // DFCM_SERVICE_SLOT_MAP_HH
