#include "tracegen/mixer.hh"

#include <cassert>
#include <numeric>

namespace vpred::tracegen
{

void
TraceMixer::add(Pc pc, std::unique_ptr<PatternSource> source,
                unsigned weight)
{
    assert(source);
    assert(weight >= 1);
    entries_.push_back({pc, std::move(source), weight});
}

ValueTrace
TraceMixer::generate(std::size_t records)
{
    assert(!entries_.empty());
    ValueTrace trace;
    trace.reserve(records);

    // One "loop iteration" emits each instruction `weight` times, in
    // round-robin order, until the requested length is reached.
    while (trace.size() < records) {
        for (Entry& e : entries_) {
            for (unsigned i = 0; i < e.weight; ++i) {
                if (trace.size() >= records)
                    return trace;
                trace.push_back({e.pc, e.source->next()});
            }
        }
    }
    return trace;
}

ValueTrace
TraceMixer::generateStochastic(std::size_t records)
{
    assert(!entries_.empty());
    const std::uint64_t total = std::accumulate(
            entries_.begin(), entries_.end(), std::uint64_t{0},
            [](std::uint64_t acc, const Entry& e) {
                return acc + e.weight;
            });

    ValueTrace trace;
    trace.reserve(records);
    while (trace.size() < records) {
        std::uint64_t pick = rng_.nextBelow(total);
        for (Entry& e : entries_) {
            if (pick < e.weight) {
                trace.push_back({e.pc, e.source->next()});
                break;
            }
            pick -= e.weight;
        }
    }
    return trace;
}

ValueTrace
makeMixedTrace(const MixSpec& spec, std::size_t records)
{
    TraceMixer mixer(spec.seed);
    Xorshift rng(spec.seed);
    Pc pc = 0;

    for (unsigned i = 0; i < spec.stride_instructions; ++i) {
        const Value base = rng.next() & maskBits(24);
        const Value stride = 1 + rng.nextBelow(16);
        const std::uint64_t length = 8 + rng.nextBelow(200);
        mixer.add(pc++, std::make_unique<StridePattern>(
                base, stride, length, spec.value_bits));
    }
    for (unsigned i = 0; i < spec.constant_instructions; ++i) {
        mixer.add(pc++, std::make_unique<ConstantPattern>(
                rng.next() & maskBits(spec.value_bits)));
    }
    for (unsigned i = 0; i < spec.context_instructions; ++i) {
        std::vector<Value> seq(spec.context_period);
        for (Value& v : seq)
            v = rng.next() & maskBits(spec.value_bits);
        mixer.add(pc++, std::make_unique<SequencePattern>(std::move(seq)));
    }
    for (unsigned i = 0; i < spec.random_instructions; ++i) {
        mixer.add(pc++, std::make_unique<RandomPattern>(rng.next(),
                                                        spec.value_bits));
    }
    return mixer.generate(records);
}

} // namespace vpred::tracegen
