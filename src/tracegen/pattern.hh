/**
 * @file
 * Synthetic value-pattern sources.
 *
 * These model the pattern population the paper reasons about:
 * constant patterns (e.g. slt results), stride patterns of arbitrary
 * step and range (loop counters, array addresses), repeating
 * non-stride sequences (the context patterns two-level predictors
 * exist for), finite-context Markov chains, and unpredictable
 * values. Used by unit/property tests and the custom_trace example;
 * the full-scale experiments use the MiniRISC workloads instead.
 */

#ifndef DFCM_TRACEGEN_PATTERN_HH
#define DFCM_TRACEGEN_PATTERN_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/types.hh"

namespace vpred::tracegen
{

/**
 * Deterministic xorshift64* pseudo-random generator. Simulations
 * must be exactly reproducible, so the library never uses
 * std::random devices.
 */
class Xorshift
{
  public:
    explicit Xorshift(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
        : state_(seed ? seed : 1)
    {}

    std::uint64_t
    next()
    {
        std::uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545F4914F6CDD1Dull;
    }

    /** Uniform value in [0, bound). @p bound must be nonzero. */
    std::uint64_t nextBelow(std::uint64_t bound) { return next() % bound; }

  private:
    std::uint64_t state_;
};

/** A source of successive values for one static instruction. */
class PatternSource
{
  public:
    virtual ~PatternSource() = default;

    /** Produce the next value of the pattern. */
    virtual Value next() = 0;

    /** Restart the pattern from its initial state. */
    virtual void reset() = 0;
};

/** Always the same value (the paper's "constant pattern"). */
class ConstantPattern : public PatternSource
{
  public:
    explicit ConstantPattern(Value value) : value_(value) {}

    Value next() override { return value_; }
    void reset() override {}

  private:
    Value value_;
};

/**
 * Arithmetic stride pattern with optional wrap-around, e.g.
 * 0 1 2 3 4 5 6 0 1 2 ... (base 0, stride 1, length 7). With
 * length == 0 the pattern never wraps (a pure induction variable).
 */
class StridePattern : public PatternSource
{
  public:
    StridePattern(Value base, Value stride, std::uint64_t length = 0,
                  unsigned value_bits = 32)
        : base_(base), stride_(stride), length_(length),
          mask_(maskBits(value_bits)), position_(0)
    {}

    Value
    next() override
    {
        const Value v = (base_ + stride_ * position_) & mask_;
        ++position_;
        if (length_ != 0 && position_ == length_)
            position_ = 0;
        return v;
    }

    void reset() override { position_ = 0; }

  private:
    Value base_;
    Value stride_;
    std::uint64_t length_;
    std::uint64_t mask_;
    std::uint64_t position_;
};

/**
 * A fixed repeating sequence of arbitrary values — the "irregular
 * repeating pattern" that only a context predictor can capture.
 */
class SequencePattern : public PatternSource
{
  public:
    explicit SequencePattern(std::vector<Value> values)
        : values_(std::move(values)), position_(0)
    {}

    Value
    next() override
    {
        const Value v = values_[position_];
        position_ = (position_ + 1) % values_.size();
        return v;
    }

    void reset() override { position_ = 0; }

  private:
    std::vector<Value> values_;
    std::size_t position_;
};

/**
 * A first-order Markov walk over a small alphabet: from each symbol,
 * one of a few successors is chosen pseudo-randomly. Produces
 * context-predictable-but-not-periodic streams.
 */
class MarkovPattern : public PatternSource
{
  public:
    /**
     * @param alphabet The values the walk visits.
     * @param fanout Number of possible successors per value (1 =
     *        deterministic cycle).
     * @param seed RNG seed.
     */
    MarkovPattern(std::vector<Value> alphabet, unsigned fanout,
                  std::uint64_t seed);

    Value next() override;
    void reset() override;

  private:
    std::vector<Value> alphabet_;
    std::vector<std::vector<std::size_t>> successors_;
    std::uint64_t seed_;
    Xorshift rng_;
    std::size_t state_;
};

/** Uniformly pseudo-random values — unpredictable by design. */
class RandomPattern : public PatternSource
{
  public:
    explicit RandomPattern(std::uint64_t seed, unsigned value_bits = 32)
        : seed_(seed), rng_(seed), mask_(maskBits(value_bits))
    {}

    Value next() override { return rng_.next() & mask_; }
    void reset() override { rng_ = Xorshift(seed_); }

  private:
    std::uint64_t seed_;
    Xorshift rng_;
    std::uint64_t mask_;
};

} // namespace vpred::tracegen

#endif // DFCM_TRACEGEN_PATTERN_HH
