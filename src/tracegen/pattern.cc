#include "tracegen/pattern.hh"

#include <cassert>

namespace vpred::tracegen
{

MarkovPattern::MarkovPattern(std::vector<Value> alphabet, unsigned fanout,
                             std::uint64_t seed)
    : alphabet_(std::move(alphabet)), seed_(seed), rng_(seed), state_(0)
{
    assert(!alphabet_.empty());
    assert(fanout >= 1);

    // Build a fixed successor graph from a dedicated RNG so that the
    // *structure* is a function of the seed and the walk itself uses
    // fresh randomness.
    Xorshift graph_rng(seed ^ 0xA5A5A5A5A5A5A5A5ull);
    successors_.resize(alphabet_.size());
    for (auto& succ : successors_) {
        succ.resize(fanout);
        for (auto& s : succ)
            s = graph_rng.nextBelow(alphabet_.size());
    }
}

Value
MarkovPattern::next()
{
    const Value v = alphabet_[state_];
    const auto& succ = successors_[state_];
    state_ = succ[rng_.nextBelow(succ.size())];
    return v;
}

void
MarkovPattern::reset()
{
    rng_ = Xorshift(seed_);
    state_ = 0;
}

} // namespace vpred::tracegen
