/**
 * @file
 * Composition of per-instruction pattern sources into a value trace.
 */

#ifndef DFCM_TRACEGEN_MIXER_HH
#define DFCM_TRACEGEN_MIXER_HH

#include <memory>
#include <vector>

#include "core/types.hh"
#include "tracegen/pattern.hh"

namespace vpred::tracegen
{

/**
 * Builds a ValueTrace by interleaving several static instructions,
 * each driven by its own PatternSource and occurrence weight.
 *
 * Two interleaving modes:
 *
 *  - weighted round-robin (deterministic): instructions appear in a
 *    fixed schedule proportional to their weights, modelling a loop
 *    body executed over and over;
 *  - stochastic: each trace slot picks an instruction with
 *    probability proportional to its weight (seeded, reproducible).
 */
class TraceMixer
{
  public:
    explicit TraceMixer(std::uint64_t seed = 12345) : rng_(seed) {}

    /**
     * Register an instruction.
     *
     * @param pc Static-instruction identifier.
     * @param source Pattern generating the instruction's results.
     * @param weight Relative dynamic frequency (>= 1).
     */
    void add(Pc pc, std::unique_ptr<PatternSource> source,
             unsigned weight = 1);

    /** Deterministic weighted round-robin interleaving. */
    ValueTrace generate(std::size_t records);

    /** Stochastic interleaving (weights as probabilities). */
    ValueTrace generateStochastic(std::size_t records);

    /** Number of registered instructions. */
    std::size_t instructionCount() const { return entries_.size(); }

  private:
    struct Entry
    {
        Pc pc;
        std::unique_ptr<PatternSource> source;
        unsigned weight;
    };

    std::vector<Entry> entries_;
    Xorshift rng_;
};

/**
 * Convenience: the paper's motivating mixture — a population of
 * stride patterns (different bases/strides/ranges), constant
 * patterns, context (sequence) patterns and noise, with the given
 * instruction counts. Used by property tests and the custom_trace
 * example.
 */
struct MixSpec
{
    unsigned stride_instructions = 16;
    unsigned constant_instructions = 4;
    unsigned context_instructions = 8;
    unsigned random_instructions = 2;
    unsigned context_period = 12;   //!< repeating-sequence length
    std::uint64_t seed = 42;
    unsigned value_bits = 32;
};

/** Build a mixed trace per @p spec with @p records records. */
ValueTrace makeMixedTrace(const MixSpec& spec, std::size_t records);

} // namespace vpred::tracegen

#endif // DFCM_TRACEGEN_MIXER_HH
