/**
 * @file
 * vpsim — the unified command-line driver for the library: run any
 * predictor configuration over any workload or stored trace and
 * report accuracy and storage.
 *
 * Usage:
 *   vpsim [options]
 *     --workload NAME     MiniRISC workload (default: li)
 *     --trace FILE        use a stored trace instead (see trace_tool)
 *     --predictor KIND    lvp | stride | 2delta | fcm | dfcm |
 *                         hybrid-fcm | hybrid-dfcm | perfect-fcm |
 *                         perfect-dfcm   (default: dfcm)
 *     --l1 BITS           log2 level-1/table entries (default 16)
 *     --l2 BITS           log2 level-2 entries (default 12)
 *     --stride-bits BITS  DFCM stored-stride width (default 32)
 *     --delay N           delayed update distance (default 0)
 *     --scale X           workload trace scale (default 1.0)
 *     --per-pc N          also print the N hardest instructions
 *     --list              list available workloads and exit
 */

#include <algorithm>
#include <cstring>
#include <iostream>
#include <map>

#include "core/parse_util.hh"
#include "core/vpred.hh"
#include "harness/table_printer.hh"
#include "workloads/workload.hh"

namespace
{

using namespace vpred;

PredictorKind
parseKind(const std::string& s)
{
    static const std::map<std::string, PredictorKind> kinds = {
        {"lvp", PredictorKind::Lvp},
        {"stride", PredictorKind::Stride},
        {"2delta", PredictorKind::TwoDelta},
        {"fcm", PredictorKind::Fcm},
        {"dfcm", PredictorKind::Dfcm},
        {"hybrid-fcm", PredictorKind::HybridStrideFcm},
        {"hybrid-dfcm", PredictorKind::HybridStrideDfcm},
        {"perfect-fcm", PredictorKind::PerfectStrideFcm},
        {"perfect-dfcm", PredictorKind::PerfectStrideDfcm},
    };
    const auto it = kinds.find(s);
    if (it == kinds.end())
        throw std::invalid_argument("unknown predictor '" + s + "'");
    return it->second;
}

unsigned
parseUnsignedArg(const std::string& opt, const std::string& text,
                 unsigned long long max)
{
    const auto v = parseUInt(text, max);
    if (!v)
        throw std::invalid_argument(opt + ": bad value '" + text + "'");
    return static_cast<unsigned>(*v);
}

double
parseScaleArg(const std::string& opt, const std::string& text)
{
    const auto v = parseDouble(text);
    if (!v || *v <= 0.0)
        throw std::invalid_argument(opt + ": bad value '" + text + "'");
    return *v;
}

int
usage(const char* argv0)
{
    std::cerr << "usage: " << argv0
              << " [--workload NAME | --trace FILE] [--predictor KIND]"
              << " [--l1 N] [--l2 N]\n"
              << "             [--stride-bits N] [--delay N]"
              << " [--scale X] [--per-pc N] [--list]\n";
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string workload = "li";
    std::string trace_file;
    PredictorConfig cfg;
    double scale = 1.0;
    std::size_t per_pc = 0;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc)
                    throw std::invalid_argument(arg + " needs a value");
                return argv[++i];
            };
            if (arg == "--list") {
                for (const auto& w : workloads::allWorkloads())
                    std::cout << w.name << "  -  " << w.description
                              << "\n";
                return 0;
            } else if (arg == "--workload") {
                workload = next();
            } else if (arg == "--trace") {
                trace_file = next();
            } else if (arg == "--predictor") {
                cfg.kind = parseKind(next());
            } else if (arg == "--l1") {
                cfg.l1_bits = parseUnsignedArg(arg, next(), 64);
            } else if (arg == "--l2") {
                cfg.l2_bits = parseUnsignedArg(arg, next(), 64);
            } else if (arg == "--stride-bits") {
                cfg.stride_bits = parseUnsignedArg(arg, next(), 64);
            } else if (arg == "--delay") {
                cfg.update_delay = parseUnsignedArg(arg, next(), 1u << 20);
            } else if (arg == "--scale") {
                scale = parseScaleArg(arg, next());
            } else if (arg == "--per-pc") {
                per_pc = parseUnsignedArg(arg, next(), 1u << 20);
            } else {
                return usage(argv[0]);
            }
        }

        const ValueTrace trace = trace_file.empty()
            ? workloads::runWorkload(workload, scale).trace
            : loadTrace(trace_file);
        std::cout << "trace: "
                  << (trace_file.empty() ? workload : trace_file)
                  << ", " << trace.size() << " records\n";

        auto predictor = makePredictor(cfg);
        std::map<Pc, PredictorStats> per_pc_stats;
        PredictorStats total;
        for (const TraceRecord& rec : trace) {
            const bool ok =
                    predictor->predictAndUpdate(rec.pc, rec.value);
            total.record(ok);
            if (per_pc > 0)
                per_pc_stats[rec.pc].record(ok);
        }

        std::cout << "predictor: " << predictor->name() << "\n"
                  << "storage:   " << predictor->storageKbit()
                  << " Kbit\n"
                  << "accuracy:  " << total.accuracy() << " ("
                  << total.correct << "/" << total.predictions
                  << ")\n";

        if (per_pc > 0) {
            std::vector<std::pair<Pc, PredictorStats>> ranked(
                    per_pc_stats.begin(), per_pc_stats.end());
            std::sort(ranked.begin(), ranked.end(),
                      [](const auto& a, const auto& b) {
                          const auto wrong = [](const auto& s) {
                              return s.second.predictions
                                      - s.second.correct;
                          };
                          return wrong(a) > wrong(b);
                      });
            std::cout << "\nhardest instructions (by mispredictions):\n";
            harness::TablePrinter t({"pc", "count", "accuracy"});
            for (std::size_t i = 0;
                 i < std::min(per_pc, ranked.size()); ++i) {
                t.addRow({std::to_string(ranked[i].first),
                          harness::TablePrinter::fmt(
                                  ranked[i].second.predictions),
                          harness::TablePrinter::fmt(
                                  ranked[i].second.accuracy())});
            }
            t.print(std::cout);
        }
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
