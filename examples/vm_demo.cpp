/**
 * @file
 * Example: assemble and run a MiniRISC program from source, inspect
 * its value trace and feed it to a predictor — the full substrate
 * pipeline in one file.
 *
 * The program is the paper's favourite shape: a doubly-nested loop
 * over a matrix with an slt-computed flag, i.e. stride patterns plus
 * an almost-constant pattern.
 */

#include <iostream>

#include "core/dfcm_predictor.hh"
#include "core/stats.hh"
#include "sim/assembler.hh"
#include "sim/tracer.hh"

int
main()
{
    using namespace vpred;

    const char* source = R"(
# sum the upper triangle of a 50x50 matrix
        .equ N, 50
        .data
mat:    .space 10000            # 50*50 words
        .text
main:   la   $t0, mat           # fill mat[i][j] = i + 2 j
        li   $t1, 0             # i
fi:     li   $t2, 0             # j
fj:     sll  $t3, $t2, 1
        add  $t3, $t3, $t1
        sw   $t3, 0($t0)
        addi $t0, $t0, 4
        addi $t2, $t2, 1
        li   $t4, N
        blt  $t2, $t4, fj
        addi $t1, $t1, 1
        blt  $t1, $t4, fi

        li   $s0, 0             # sum
        li   $t1, 0             # i
si:     li   $t2, 0             # j
sj:     slt  $t5, $t2, $t1      # below the diagonal? (near-constant)
        bnez $t5, skip
        li   $t4, N
        mul  $t6, $t1, $t4
        add  $t6, $t6, $t2
        sll  $t6, $t6, 2
        la   $t7, mat
        add  $t7, $t7, $t6
        lw   $t8, 0($t7)
        add  $s0, $s0, $t8
skip:   addi $t2, $t2, 1
        li   $t4, N
        blt  $t2, $t4, sj
        addi $t1, $t1, 1
        blt  $t1, $t4, si

        move $a0, $s0
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
)";

    // 1. Assemble.
    const sim::Program program = sim::assemble(source);
    std::cout << "assembled " << program.text.size()
              << " instructions, " << program.data.size()
              << " data bytes\n";
    std::cout << "first instructions:\n";
    for (std::size_t i = 0; i < 4; ++i)
        std::cout << "  " << i << ": "
                  << sim::disassemble(program.text[i]) << "\n";

    // 2. Execute and trace.
    const sim::TraceResult result = sim::traceProgram(program, 1u << 24);
    std::cout << "\nexecuted " << result.instructions
              << " instructions, traced " << result.trace.size()
              << " predictions\nprogram output: " << result.output
              << "\n";

    // 3. Predict.
    DfcmPredictor dfcm({.l1_bits = 10, .l2_bits = 10});
    const PredictorStats stats = runTrace(dfcm, result.trace);
    std::cout << "\n" << dfcm.name() << " accuracy: " << stats.accuracy()
              << " (" << stats.correct << "/" << stats.predictions
              << ")\n";
    return 0;
}
