/**
 * @file
 * Example: per-static-instruction predictability report for a
 * workload — which instructions are constant / stride / context
 * predictable, and which are hard. Pinpoints where each predictor
 * earns its accuracy, the instruction-level view behind the paper's
 * aggregate numbers.
 *
 * Usage: predictability_report [workload] [top_n]
 */

#include <algorithm>
#include <iostream>
#include <map>

#include "core/dfcm_predictor.hh"
#include "core/parse_util.hh"
#include "core/fcm_predictor.hh"
#include "core/last_value_predictor.hh"
#include "core/stride_predictor.hh"
#include "harness/table_printer.hh"
#include "sim/assembler.hh"
#include "workloads/workload.hh"

int
main(int argc, char** argv)
{
    using namespace vpred;
    using harness::TablePrinter;

    const std::string name = argc > 1 ? argv[1] : "li";
    std::size_t top_n = 20;
    if (argc > 2) {
        const std::optional<unsigned long long> v =
                parseUInt(argv[2], 1u << 20);
        if (!v) {
            std::cerr << "predictability_report: bad top_n '" << argv[2]
                      << "'\nusage: predictability_report [workload]"
                         " [top_n]\n";
            return 2;
        }
        top_n = static_cast<std::size_t>(*v);
    }

    const auto& workload = workloads::findWorkload(name);
    const sim::Program program = sim::assemble(workload.assembly);
    const sim::TraceResult result = workloads::runWorkload(workload, 0.5);

    // Run the four predictor families, tracking per-pc outcomes.
    LastValuePredictor lvp(16);
    StridePredictor stride(16);
    FcmPredictor fcm({.l1_bits = 16, .l2_bits = 12, .value_bits = 32,
                      .hash = {}});
    DfcmPredictor dfcm({.l1_bits = 16, .l2_bits = 12});

    struct PcStats
    {
        std::uint64_t count = 0;
        std::uint64_t lvp = 0, stride = 0, fcm = 0, dfcm = 0;
    };
    std::map<Pc, PcStats> per_pc;

    for (const TraceRecord& rec : result.trace) {
        PcStats& s = per_pc[rec.pc];
        ++s.count;
        s.lvp += lvp.predictAndUpdate(rec.pc, rec.value);
        s.stride += stride.predictAndUpdate(rec.pc, rec.value);
        s.fcm += fcm.predictAndUpdate(rec.pc, rec.value);
        s.dfcm += dfcm.predictAndUpdate(rec.pc, rec.value);
    }

    // Rank by execution weight.
    std::vector<std::pair<Pc, PcStats>> ranked(per_pc.begin(),
                                               per_pc.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                  return a.second.count > b.second.count;
              });

    std::cout << "workload " << name << ": " << result.trace.size()
              << " predictions over " << per_pc.size()
              << " static instructions\n\n";

    TablePrinter table({"pc", "instruction", "count", "lvp", "stride",
                        "fcm", "dfcm"});
    for (std::size_t i = 0; i < std::min(top_n, ranked.size()); ++i) {
        const auto& [pc, s] = ranked[i];
        const double n = static_cast<double>(s.count);
        table.addRow({std::to_string(pc),
                      sim::disassemble(program.text[pc]),
                      TablePrinter::fmt(s.count),
                      TablePrinter::fmt(static_cast<double>(s.lvp) / n, 2),
                      TablePrinter::fmt(
                              static_cast<double>(s.stride) / n, 2),
                      TablePrinter::fmt(static_cast<double>(s.fcm) / n, 2),
                      TablePrinter::fmt(
                              static_cast<double>(s.dfcm) / n, 2)});
    }
    table.print(std::cout);

    // Aggregate: how many instructions does each family win?
    std::size_t dfcm_best = 0, any_90 = 0;
    for (const auto& [pc, s] : ranked) {
        const std::uint64_t best =
                std::max({s.lvp, s.stride, s.fcm, s.dfcm});
        if (best == s.dfcm)
            ++dfcm_best;
        if (best * 10 >= s.count * 9)
            ++any_90;
    }
    std::cout << "\nDFCM is (one of) the best predictor(s) on "
              << dfcm_best << "/" << ranked.size()
              << " static instructions; " << any_90
              << " are >=90% predictable by some family.\n";
    return 0;
}
