/**
 * @file
 * sweep_tool — run an arbitrary (predictor × l1 × l2) grid over the
 * workload suite on the parallel sweep executor and emit the results
 * as a table plus a results/BENCH_<name>.json file.
 *
 *     sweep_tool [--kind dfcm] [--l1 10,12,14,16] [--l2 8,...,20]
 *                [--workloads go,li,...] [--jobs N] [--scale X]
 *                [--out NAME]
 *
 * Defaults reproduce the Figure 11(a) DFCM grid over the paper's
 * eight-benchmark suite. --jobs overrides REPRO_JOBS, --scale
 * overrides REPRO_TRACE_SCALE.
 */

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/parse_util.hh"
#include "harness/experiment.hh"
#include "harness/parallel_sweep.hh"
#include "harness/results_json.hh"
#include "harness/sweep.hh"
#include "harness/table_printer.hh"
#include "workloads/workload.hh"

namespace
{

using namespace vpred;

const std::vector<std::pair<std::string, PredictorKind>> kKinds = {
    {"lvp", PredictorKind::Lvp},
    {"stride", PredictorKind::Stride},
    {"2delta", PredictorKind::TwoDelta},
    {"fcm", PredictorKind::Fcm},
    {"dfcm", PredictorKind::Dfcm},
    {"hybrid-stride+fcm", PredictorKind::HybridStrideFcm},
    {"hybrid-stride+dfcm", PredictorKind::HybridStrideDfcm},
    {"perfect-stride+fcm", PredictorKind::PerfectStrideFcm},
    {"perfect-stride+dfcm", PredictorKind::PerfectStrideDfcm},
};

bool
parseKind(const std::string& s, PredictorKind& out)
{
    for (const auto& [name, kind] : kKinds) {
        if (s == name) {
            out = kind;
            return true;
        }
    }
    return false;
}

std::vector<std::string>
splitList(const std::string& s)
{
    std::vector<std::string> out;
    std::istringstream is(s);
    std::string item;
    while (std::getline(is, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

bool
parseUnsignedList(const std::string& s, std::vector<unsigned>& out)
{
    out.clear();
    for (const std::string& item : splitList(s)) {
        const std::optional<unsigned long long> v = parseUInt(item, 64);
        if (!v)
            return false;
        out.push_back(static_cast<unsigned>(*v));
    }
    return !out.empty();
}

int
usage(const char* argv0)
{
    std::cerr
        << "usage: " << argv0 << " [options]\n"
        << "  --kind K        predictor kind (default dfcm); one of:\n"
        << "                  ";
    for (const auto& [name, kind] : kKinds)
        std::cerr << name << " ";
    std::cerr
        << "\n"
        << "  --l1 A,B,...    log2 level-1 sizes (default 10,12,14,16)\n"
        << "  --l2 A,B,...    log2 level-2 sizes (default 8,10,...,20)\n"
        << "  --workloads ... comma-separated workload names\n"
        << "                  (default: the eight-benchmark suite)\n"
        << "  --jobs N        worker threads (default REPRO_JOBS or all"
           " cores)\n"
        << "  --scale X       trace scale (default REPRO_TRACE_SCALE or"
           " 1.0)\n"
        << "  --out NAME      JSON stem: results/BENCH_<NAME>.json\n"
        << "                  (default sweep_tool)\n";
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    using harness::TablePrinter;

    PredictorKind kind = PredictorKind::Dfcm;
    std::vector<unsigned> l1_bits = {10, 12, 14, 16};
    std::vector<unsigned> l2_bits = harness::paperL2Bits();
    std::vector<std::string> workload_names =
            workloads::benchmarkNames();
    unsigned jobs = 0;
    double scale = 0.0;
    std::string out_name = "sweep_tool";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
        auto need = [&](bool parsed_ok) {
            if (value == nullptr || !parsed_ok) {
                std::cerr << "sweep_tool: bad or missing value for "
                          << arg << "\n";
                std::exit(usage(argv[0]));
            }
            ++i;
        };
        if (arg == "--help" || arg == "-h") {
            return usage(argv[0]);
        } else if (arg == "--kind") {
            need(value != nullptr && parseKind(value, kind));
        } else if (arg == "--l1") {
            need(value != nullptr && parseUnsignedList(value, l1_bits));
        } else if (arg == "--l2") {
            need(value != nullptr && parseUnsignedList(value, l2_bits));
        } else if (arg == "--workloads") {
            need(value != nullptr);
            workload_names = splitList(value);
        } else if (arg == "--jobs") {
            const std::optional<unsigned long long> v =
                    value ? parseUInt(value, 512) : std::nullopt;
            need(v.has_value() && v.value_or(0) >= 1);
            jobs = static_cast<unsigned>(v.value_or(0));
        } else if (arg == "--scale") {
            const std::optional<double> v =
                    value ? parseDouble(value) : std::nullopt;
            need(v.has_value() && v.value_or(0.0) > 0.0);
            scale = v.value_or(0.0);
        } else if (arg == "--out") {
            need(value != nullptr && *value != '\0');
            out_name = value;
        } else {
            std::cerr << "sweep_tool: unknown option " << arg << "\n";
            return usage(argv[0]);
        }
    }

    // Validate workload names up front for a friendly error.
    for (const std::string& name : workload_names) {
        try {
            workloads::findWorkload(name);
        } catch (const std::out_of_range&) {
            std::cerr << "sweep_tool: unknown workload '" << name
                      << "'; available:";
            for (const auto& w : workloads::allWorkloads())
                std::cerr << " " << w.name;
            std::cerr << "\n";
            return 2;
        }
    }

    harness::TraceCache cache(scale);
    harness::ParallelSweep sweep(cache, jobs);
    harness::ResultsJsonWriter json(out_name, cache.scale(),
                                    sweep.jobs());

    const std::vector<PredictorConfig> configs =
            harness::twoLevelGrid(kind, l1_bits, l2_bits);
    std::cout << "sweep: " << kindName(kind) << ", "
              << configs.size() << " configs x "
              << workload_names.size() << " workloads, "
              << sweep.jobs() << " jobs, trace scale " << cache.scale()
              << "\n\n";

    const auto start = std::chrono::steady_clock::now();
    const std::vector<harness::SuiteResult> results =
            sweep.runGrid(configs, workload_names);
    const double wall = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - start)
                                .count();
    json.addGrid(configs, results);
    json.setExecution(sweep.lastExecution());

    TablePrinter table({"predictor", "l1_bits", "l2_bits", "size_kbit",
                        "accuracy"});
    for (std::size_t i = 0; i < configs.size(); ++i) {
        table.addRow({results[i].predictor,
                      TablePrinter::fmt(std::uint64_t{configs[i].l1_bits}),
                      TablePrinter::fmt(std::uint64_t{configs[i].l2_bits}),
                      TablePrinter::fmt(results[i].storageKbit(), 1),
                      TablePrinter::fmt(results[i].accuracy())});
    }
    table.print(std::cout);
    const harness::SweepExecution& exec = sweep.lastExecution();
    std::cout << "\n[" << configs.size() * workload_names.size()
              << " cells in " << TablePrinter::fmt(wall, 2) << " s; path "
              << exec.path() << ", " << exec.trace_walks
              << " trace walks (REPRO_BATCH_SWEEP=0 disables batching)]\n";

    if (json.write())
        std::cout << "wrote results/BENCH_" << out_name << ".json\n";
    return 0;
}
