/**
 * @file
 * Example: build a synthetic workload with the tracegen library and
 * study how the predictor families trade off — the scenario the
 * paper's introduction motivates (stride patterns crowding out
 * context patterns in the level-2 table).
 *
 * Usage: custom_trace [records] [stride_instrs] [context_instrs]
 */

#include <cstdlib>
#include <iostream>

#include "core/parse_util.hh"
#include "core/predictor_factory.hh"
#include "core/stats.hh"
#include "harness/table_printer.hh"
#include "tracegen/mixer.hh"
#include "tracegen/pattern.hh"

int
main(int argc, char** argv)
{
    using namespace vpred;
    using harness::TablePrinter;

    // Checked parsing: a typo'd argument is a loud usage error, not a
    // silent zero-record run (the old atoi behavior).
    auto arg = [&](int i, unsigned long long fallback,
                   unsigned long long max) -> unsigned long long {
        if (argc <= i)
            return fallback;
        const std::optional<unsigned long long> v =
                parseUInt(argv[i], max);
        if (!v) {
            std::cerr << "custom_trace: bad argument '" << argv[i]
                      << "'\nusage: custom_trace [records]"
                         " [stride_instrs] [context_instrs]\n";
            std::exit(2);
        }
        return *v;
    };
    const std::size_t records =
            static_cast<std::size_t>(arg(1, 400000, 1ull << 32));
    const unsigned strides = static_cast<unsigned>(arg(2, 32, 4096));
    const unsigned contexts = static_cast<unsigned>(arg(3, 8, 4096));

    // Hand-mix a workload: many stride instructions (loop counters,
    // address arithmetic), a few context patterns (pointer chases),
    // a pinch of noise. This is the regime where the paper shows the
    // FCM wasting its level-2 table on strides.
    tracegen::TraceMixer mixer(2024);
    tracegen::Xorshift rng(7);
    Pc pc = 0;
    for (unsigned i = 0; i < strides; ++i) {
        mixer.add(pc++, std::make_unique<tracegen::StridePattern>(
                rng.next() & maskBits(20), 1 + rng.nextBelow(8),
                16 + rng.nextBelow(300)));
    }
    for (unsigned i = 0; i < contexts; ++i) {
        std::vector<Value> alphabet(8);
        for (Value& v : alphabet)
            v = rng.next() & maskBits(28);
        mixer.add(pc++, std::make_unique<tracegen::MarkovPattern>(
                std::move(alphabet), 2, rng.next()));
    }
    mixer.add(pc++, std::make_unique<tracegen::RandomPattern>(1));
    const ValueTrace trace = mixer.generate(records);

    std::cout << "trace: " << trace.size() << " records, "
              << mixer.instructionCount() << " static instructions ("
              << strides << " stride, " << contexts << " context)\n\n";

    TablePrinter table({"predictor", "size_kbit", "accuracy"});
    const PredictorKind kinds[] = {
        PredictorKind::Lvp,           PredictorKind::Stride,
        PredictorKind::TwoDelta,      PredictorKind::Fcm,
        PredictorKind::Dfcm,          PredictorKind::HybridStrideFcm,
        PredictorKind::PerfectStrideFcm,
        PredictorKind::PerfectStrideDfcm,
    };
    for (PredictorKind kind : kinds) {
        PredictorConfig cfg;
        cfg.kind = kind;
        cfg.l1_bits = 12;
        cfg.l2_bits = 10;
        auto p = makePredictor(cfg);
        const PredictorStats s = runTrace(*p, trace);
        table.addRow({p->name(), TablePrinter::fmt(p->storageKbit(), 1),
                      TablePrinter::fmt(s.accuracy())});
    }
    table.print(std::cout);

    std::cout << "\nTry shifting the mix (e.g. `custom_trace 400000 4 "
              << "40`):\nwith few strides the FCM/DFCM gap closes — "
              << "the gap *is* the stride interference.\n";
    return 0;
}
