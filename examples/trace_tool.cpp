/**
 * @file
 * Example: a small trace utility built on the public API — dump a
 * workload's value trace to a file (binary or CSV), reload it,
 * evaluate predictors on the stored trace, and manage the persistent
 * memory-mapped trace store (REPRO_TRACE_DIR). This is the decoupled
 * workflow for importing traces from other simulators and for
 * prewarming CI containers.
 *
 * Usage:
 *   trace_tool dump <workload> <file> [scale]
 *   trace_tool eval <file>
 *   trace_tool info <file>
 *   trace_tool populate [dir] [scale]
 *   trace_tool inspect <file.vpt2>
 *   trace_tool verify <file.vpt2>
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <set>
#include <stdexcept>

#include "core/parse_util.hh"
#include "core/predictor_factory.hh"
#include "core/stats.hh"
#include "core/trace_io.hh"
#include "harness/trace_cache.hh"
#include "harness/trace_store.hh"
#include "workloads/workload.hh"

namespace
{

int
usage()
{
    std::cerr
            << "usage:\n"
            << "  trace_tool dump <workload> <file> [scale]\n"
            << "  trace_tool eval <file>\n"
            << "  trace_tool info <file>\n"
            << "  trace_tool populate [dir] [scale]\n"
            << "  trace_tool inspect <file.vpt2>\n"
            << "  trace_tool verify <file.vpt2>\n"
            << "(.csv extension selects text format; populate fills "
               "the trace store\n for every workload — dir defaults "
               "to REPRO_TRACE_DIR)\n";
    return 2;
}

/** Checked [scale] argument; the main() catch turns the throw into
 *  an error message and nonzero exit. */
double
parseScaleArg(const char* text)
{
    const std::optional<double> v = vpred::parseDouble(text);
    if (!v || v.value_or(0.0) < 0.0)
        throw std::invalid_argument(
                std::string("bad scale '") + text
                + "' (want a non-negative number)");
    return *v;
}

/** Fill the store with every workload's trace; idempotent. */
int
populate(const std::string& dir, double scale)
{
    using namespace vpred;
    if (dir.empty()) {
        std::cerr << "error: no store directory (pass one or set "
                     "REPRO_TRACE_DIR)\n";
        return 2;
    }
    harness::TraceCache cache(scale, dir);
    std::vector<std::string> names;
    for (const workloads::Workload& w : workloads::allWorkloads())
        names.push_back(w.name);

    const auto t0 = std::chrono::steady_clock::now();
    cache.prewarm(names);
    const double wall = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();

    const auto acq = cache.acquisition();
    std::cout << "store " << dir << " at scale " << cache.scale()
              << ": " << acq.store_hits << " already present, "
              << acq.generated << " generated ("
              << acq.store_writes << " written) in " << wall
              << " s\n";
    return 0;
}

/** Print a VPT2 file's header without touching the records. */
int
inspect(const std::string& path)
{
    using namespace vpred;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::cerr << "error: cannot open " << path << "\n";
        return 1;
    }
    const Vpt2Layout layout = readVpt2Header(in);
    std::cout << "workload:          " << layout.meta.workload << "\n"
              << "trace scale:       " << layout.meta.scale << "\n"
              << "generator version: " << layout.meta.generator_version
              << "\n"
              << "records:           " << layout.record_count << "\n"
              << "instructions:      " << layout.meta.instructions
              << "\n"
              << "records offset:    " << layout.records_offset << "\n"
              << "checksum:          " << std::hex << layout.checksum
              << std::dec << "\n";
    return 0;
}

/** Map a VPT2 file and verify its checksum over all records. */
int
verify(const std::string& path)
{
    using namespace vpred;
    const harness::MappedTrace mapped =
            harness::TraceStore::mapFile(path);
    std::cout << "OK: " << mapped.records().size() << " records, "
              << mapped.mappingSize() << " bytes mapped, checksum "
              << "verified\n";
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace vpred;
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];

    try {
        if (cmd == "populate") {
            const std::string dir = argc > 2
                    ? argv[2] : harness::TraceStore::envDir();
            const double scale =
                    argc > 3 ? parseScaleArg(argv[3]) : 0.0;
            return populate(dir, scale);
        }
        if (argc < 3)
            return usage();
        if (cmd == "inspect")
            return inspect(argv[2]);
        if (cmd == "verify")
            return verify(argv[2]);

        if (cmd == "dump") {
            if (argc < 4)
                return usage();
            const double scale =
                    argc > 4 ? parseScaleArg(argv[4]) : 1.0;
            const auto result = workloads::runWorkload(argv[2], scale);
            saveTrace(argv[3], result.trace);
            std::cout << "wrote " << result.trace.size()
                      << " records to " << argv[3] << "\n";
            return 0;
        }

        const ValueTrace trace = loadTrace(argv[2]);
        if (cmd == "info") {
            std::set<Pc> pcs;
            Value max_value = 0;
            for (const TraceRecord& rec : trace) {
                pcs.insert(rec.pc);
                max_value = std::max(max_value, rec.value);
            }
            std::cout << "records:      " << trace.size() << "\n"
                      << "static pcs:   " << pcs.size() << "\n"
                      << "max value:    " << max_value << "\n";
            return 0;
        }
        if (cmd == "eval") {
            for (PredictorKind kind :
                 {PredictorKind::Lvp, PredictorKind::Stride,
                  PredictorKind::Fcm, PredictorKind::Dfcm}) {
                PredictorConfig cfg;
                cfg.kind = kind;
                cfg.l1_bits = 16;
                cfg.l2_bits = 12;
                auto p = makePredictor(cfg);
                const PredictorStats s = runTrace(*p, trace);
                std::cout << p->name() << ": " << s.accuracy() << "\n";
            }
            return 0;
        }
        return usage();
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
