/**
 * @file
 * Example: a small trace utility built on the public API — dump a
 * workload's value trace to a file (binary or CSV), reload it, and
 * evaluate predictors on the stored trace. This is the decoupled
 * workflow for importing traces from other simulators.
 *
 * Usage:
 *   trace_tool dump <workload> <file> [scale]
 *   trace_tool eval <file>
 *   trace_tool info <file>
 */

#include <iostream>
#include <set>

#include "core/predictor_factory.hh"
#include "core/stats.hh"
#include "core/trace_io.hh"
#include "workloads/workload.hh"

namespace
{

int
usage()
{
    std::cerr << "usage:\n"
              << "  trace_tool dump <workload> <file> [scale]\n"
              << "  trace_tool eval <file>\n"
              << "  trace_tool info <file>\n"
              << "(.csv extension selects text format)\n";
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace vpred;
    if (argc < 3)
        return usage();
    const std::string cmd = argv[1];

    try {
        if (cmd == "dump") {
            if (argc < 4)
                return usage();
            const double scale = argc > 4 ? std::atof(argv[4]) : 1.0;
            const auto result = workloads::runWorkload(argv[2], scale);
            saveTrace(argv[3], result.trace);
            std::cout << "wrote " << result.trace.size()
                      << " records to " << argv[3] << "\n";
            return 0;
        }

        const ValueTrace trace = loadTrace(argv[2]);
        if (cmd == "info") {
            std::set<Pc> pcs;
            Value max_value = 0;
            for (const TraceRecord& rec : trace) {
                pcs.insert(rec.pc);
                max_value = std::max(max_value, rec.value);
            }
            std::cout << "records:      " << trace.size() << "\n"
                      << "static pcs:   " << pcs.size() << "\n"
                      << "max value:    " << max_value << "\n";
            return 0;
        }
        if (cmd == "eval") {
            for (PredictorKind kind :
                 {PredictorKind::Lvp, PredictorKind::Stride,
                  PredictorKind::Fcm, PredictorKind::Dfcm}) {
                PredictorConfig cfg;
                cfg.kind = kind;
                cfg.l1_bits = 16;
                cfg.l2_bits = 12;
                auto p = makePredictor(cfg);
                const PredictorStats s = runTrace(*p, trace);
                std::cout << p->name() << ": " << s.accuracy() << "\n";
            }
            return 0;
        }
        return usage();
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
