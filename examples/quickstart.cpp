/**
 * @file
 * Quickstart: build a DFCM predictor, feed it a value stream, read
 * predictions — the 60-second tour of the library.
 *
 * The value sequence mirrors the paper's running examples: a stride
 * pattern (Figure 4/8) and an irregular repeating pattern (Section
 * 3's "0 4 2 1").
 */

#include <iostream>

#include "core/dfcm_predictor.hh"
#include "core/fcm_predictor.hh"
#include "core/stats.hh"

int
main()
{
    using namespace vpred;

    // A DFCM with a 2^10-entry level-1 table and a 2^12-entry
    // level-2 table, hashed with the paper's FS R-5 function.
    DfcmConfig cfg;
    cfg.l1_bits = 10;
    cfg.l2_bits = 12;
    DfcmPredictor dfcm(cfg);

    std::cout << "predictor: " << dfcm.name() << ", "
              << dfcm.storageKbit() << " Kbit, order " << dfcm.order()
              << "\n\n";

    // --- a stride pattern: 0 1 2 3 4 5 6, repeated (Figure 4/8)
    std::cout << "stride pattern 0..6 at pc=100:\n";
    for (int lap = 0; lap < 3; ++lap) {
        for (Value v = 0; v <= 6; ++v) {
            const Value predicted = dfcm.predict(100);
            const bool ok = predicted == v;
            if (lap > 0 || v < 2) {
                std::cout << "  actual " << v << "  predicted "
                          << predicted << (ok ? "  hit" : "  miss")
                          << "\n";
            }
            dfcm.update(100, v);
        }
        if (lap == 0)
            std::cout << "  ... (rest of warm-up lap elided)\n";
    }

    // --- an irregular repeating pattern: 0 4 2 1 (Section 3)
    std::cout << "\ncontext pattern 0 4 2 1 at pc=200 "
              << "(learned after it repeats):\n";
    PredictorStats stats;
    for (int lap = 0; lap < 25; ++lap) {
        for (Value v : {0u, 4u, 2u, 1u})
            stats.record(dfcm.predictAndUpdate(200, v));
    }
    std::cout << "  accuracy over 25 laps: " << stats.accuracy()
              << "\n";

    // --- compare against a plain FCM on the same stride data
    FcmPredictor fcm({.l1_bits = 10, .l2_bits = 12});
    DfcmPredictor dfcm2(cfg);
    PredictorStats sf, sd;
    for (int i = 0; i < 1000; ++i) {
        const Value v = 7 * i;  // a long stride never repeated
        sf.record(fcm.predictAndUpdate(300, v));
        sd.record(dfcm2.predictAndUpdate(300, v));
    }
    std::cout << "\nlong unseen stride (1000 steps):\n"
              << "  fcm  accuracy " << sf.accuracy() << "\n"
              << "  dfcm accuracy " << sd.accuracy()
              << "   <- strides need no repetition\n";
    return 0;
}
