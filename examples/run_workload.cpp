/**
 * @file
 * Example: run one MiniRISC workload, trace it and compare every
 * predictor family on the resulting value stream.
 *
 * Usage: run_workload [workload] [scale]
 *        run_workload --list
 */

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "core/parse_util.hh"
#include "core/predictor_factory.hh"
#include "core/stats.hh"
#include "workloads/workload.hh"

int
main(int argc, char** argv)
{
    using namespace vpred;

    const std::string name = argc > 1 ? argv[1] : "li";
    if (name == "--list") {
        for (const auto& w : workloads::allWorkloads())
            std::cout << w.name << "  -  " << w.description << "\n";
        return 0;
    }
    double scale = 1.0;
    if (argc > 2) {
        const std::optional<double> v = parseDouble(argv[2]);
        if (!v || v.value_or(0.0) <= 0.0) {
            std::cerr << "run_workload: bad scale '" << argv[2]
                      << "' (want a positive number)\n";
            return 2;
        }
        scale = *v;
    }

    if (std::none_of(workloads::allWorkloads().begin(),
                     workloads::allWorkloads().end(),
                     [&](const auto& w) { return w.name == name; })) {
        std::cerr << "unknown workload '" << name
                  << "' (try --list)\n";
        return 1;
    }
    const auto& workload = workloads::findWorkload(name);
    std::cout << "workload: " << workload.name << " ("
              << workload.description << ")\n";

    const sim::TraceResult result = workloads::runWorkload(workload, scale);
    std::cout << "instructions: " << result.instructions
              << "\npredicted:    " << result.trace.size()
              << "\noutput:       " << result.output << "\n\n";

    const PredictorConfig configs[] = {
        {.kind = PredictorKind::Lvp, .l1_bits = 16},
        {.kind = PredictorKind::Stride, .l1_bits = 16},
        {.kind = PredictorKind::TwoDelta, .l1_bits = 16},
        {.kind = PredictorKind::Fcm, .l1_bits = 16, .l2_bits = 12},
        {.kind = PredictorKind::Dfcm, .l1_bits = 16, .l2_bits = 12},
    };
    for (const PredictorConfig& cfg : configs) {
        auto predictor = makePredictor(cfg);
        const PredictorStats stats = runTrace(*predictor, result.trace);
        std::cout << predictor->name() << ": accuracy "
                  << stats.accuracy() << " (" << stats.correct << "/"
                  << stats.predictions << "), "
                  << predictor->storageKbit() << " Kbit\n";
    }
    return 0;
}
