/**
 * @file
 * Example: reproduce the paper's worked examples as printed tables.
 *
 *  - Figure 4: how an order-3 FCM scatters the repeating stride
 *    pattern 0 1 2 3 4 5 6 over the level-2 table (context -> value
 *    -> access count);
 *  - Figure 8: how the DFCM collapses the same pattern onto a
 *    handful of difference contexts;
 *  - Section 3's non-stride example 0 4 2 1 in difference form.
 */

#include <iomanip>
#include <iostream>
#include <map>
#include <vector>

#include "core/dfcm_predictor.hh"
#include "core/fcm_predictor.hh"
#include "core/hash_function.hh"

namespace
{

using namespace vpred;

/** Track (context values, stored value, access count) per level-2
 *  entry of an order-3 concatenation-hash predictor, like the
 *  paper's Figures 4 and 8. */
void
walkthrough(bool differential)
{
    const ShiftFoldHash hash = ShiftFoldHash::concat(12, 3);

    struct EntryInfo
    {
        std::vector<Value> context;
        Value value = 0;
        int accesses = 0;
    };
    std::map<std::uint64_t, EntryInfo> entries;

    std::vector<Value> history(3, 0);
    Value last = 0;
    // Two warm-up laps (the paper's tables show steady state), then
    // count accesses over several repetitions of 0..6.
    for (int lap = 0; lap < 10; ++lap) {
        for (Value v = 0; v <= 6; ++v) {
            std::uint64_t h = 0;
            for (Value x : history)
                h = hash.insert(h, x);
            const Value stored =
                    differential ? ((v - last) & 0xFFFFFFFF) : v;
            if (lap >= 2) {
                EntryInfo& e = entries[h];
                e.context = history;
                e.value = stored;
                ++e.accesses;
            }
            history.erase(history.begin());
            history.push_back(stored);
            last = v;
        }
    }

    auto asSigned = [](Value v) {
        return static_cast<std::int32_t>(v);
    };
    std::cout << (differential ? "DFCM (Figure 8)" : "FCM (Figure 4)")
              << ": pattern 0 1 2 3 4 5 6 repeated, order 3\n"
              << "  context         value   accesses\n";
    for (const auto& [h, e] : entries) {
        std::cout << "  ";
        for (Value c : e.context)
            std::cout << std::setw(3) << asSigned(c) << " ";
        std::cout << "  -> " << std::setw(4) << asSigned(e.value)
                  << "   " << std::setw(4) << e.accesses << "\n";
    }
    std::cout << "  (" << entries.size()
              << " level-2 entries in steady state)\n\n";
}

} // namespace

int
main()
{
    walkthrough(false);
    walkthrough(true);

    std::cout << "Section 3, non-stride pattern 0 4 2 1: the DFCM "
              << "remembers last value 1 and\ndifference history ";
    vpred::Value last = 0;
    const vpred::Value pattern[] = {0, 4, 2, 1};
    for (vpred::Value v : pattern) {
        if (v != 0 || last != 0) {
            std::cout << static_cast<std::int32_t>(
                    static_cast<std::uint32_t>(v - last))
                      << " ";
        }
        last = v;
    }
    std::cout << "- an equivalent representation of the context.\n";
    return 0;
}
