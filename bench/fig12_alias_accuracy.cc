/**
 * @file
 * Figure 12 reproduction: prediction accuracy per aliasing type
 * (FCM, 2^12-entry level-1 and level-2 tables, suite aggregate).
 *
 * Paper shape: l1 and hash aliasing have very low accuracy; none and
 * l2_pc are highly accurate; l2_priv sits above 50%.
 */

#include "bench_util.hh"

#include "core/alias_analysis.hh"
#include "harness/table_printer.hh"
#include "harness/trace_cache.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace vpred;
    using harness::TablePrinter;
    bench::Banner banner("fig12", "accuracy per aliasing type (FCM)");

    harness::TraceCache cache;
    FcmConfig cfg;
    cfg.l1_bits = 12;
    cfg.l2_bits = 12;

    AliasBreakdown total;
    for (const std::string& name : workloads::benchmarkNames()) {
        AliasAnalyzer analyzer(cfg, /*differential=*/false);
        total += analyzer.run(cache.getSpan(name));
    }

    TablePrinter table({"aliasing_type", "fraction", "accuracy",
                        "predictions"});
    for (unsigned t = 0; t < kAliasTypeCount; ++t) {
        const auto type = static_cast<AliasType>(t);
        const PredictorStats& s = total[type];
        table.addRow({aliasTypeName(type),
                      TablePrinter::fmt(
                              total.fractionOfPredictions(type), 3),
                      TablePrinter::fmt(s.accuracy()),
                      TablePrinter::fmt(s.predictions)});
    }
    table.print(std::cout);
    table.writeCsv("fig12_alias_accuracy");
    return 0;
}
