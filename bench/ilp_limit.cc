/**
 * @file
 * Motivation experiment (the paper's Section 1 claim, following
 * Lipasti [10] and Gonzalez & Gonzalez [8]): value prediction pushes
 * the dataflow limit imposed by true register dependences.
 *
 * For every benchmark: dataflow-limit ILP (unbounded resources,
 * unit latency, perfect control) with no value prediction, with a
 * stride predictor, with the DFCM, and with a perfect predictor.
 * Expected shape: ILP(none) < ILP(stride) < ILP(dfcm) < ILP(perfect)
 * — more accurate predictors break more true dependences.
 */

#include "bench_util.hh"

#include "core/dfcm_predictor.hh"
#include "core/stride_predictor.hh"
#include "harness/table_printer.hh"
#include "sim/assembler.hh"
#include "sim/dataflow.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace vpred;
    using harness::TablePrinter;
    bench::Banner banner("ilp_limit",
                         "dataflow-limit ILP with value prediction");

    // The analyzer re-executes the VM per model, so use a reduced
    // scale; dependence structure is scale-invariant.
    const double scale = 0.25 * harness::envTraceScale();

    TablePrinter table({"benchmark", "ilp_none", "ilp_stride",
                        "ilp_dfcm", "ilp_perfect", "dfcm_acc"});

    for (const std::string& name : workloads::benchmarkNames()) {
        const auto& w = workloads::findWorkload(name);
        const sim::Program program = sim::assemble(w.assembly);
        const auto reps = static_cast<std::uint32_t>(
                std::max(1.0, w.default_scale * scale));
        const std::pair<unsigned, std::uint32_t> init[] = {
            {sim::reg::a0, reps},
        };

        auto run = [&](sim::PredictionModel model,
                       ValuePredictor* predictor) {
            return sim::dataflowLimit(program, model, predictor,
                                      w.max_steps, init);
        };
        const sim::IlpResult none =
                run(sim::PredictionModel::None, nullptr);
        StridePredictor stride(16);
        const sim::IlpResult with_stride =
                run(sim::PredictionModel::Real, &stride);
        DfcmPredictor dfcm({.l1_bits = 16, .l2_bits = 12});
        const sim::IlpResult with_dfcm =
                run(sim::PredictionModel::Real, &dfcm);
        const sim::IlpResult perfect =
                run(sim::PredictionModel::Perfect, nullptr);

        table.addRow({name, TablePrinter::fmt(none.ilp(), 2),
                      TablePrinter::fmt(with_stride.ilp(), 2),
                      TablePrinter::fmt(with_dfcm.ilp(), 2),
                      TablePrinter::fmt(perfect.ilp(), 2),
                      TablePrinter::fmt(with_dfcm.accuracy(), 3)});
    }

    table.print(std::cout);
    table.writeCsv("ilp_limit");
    std::cout << "\nDataflow-limit model: unbounded resources, unit "
              << "latency, perfect control prediction;\ncorrectly "
              << "predicted values available at fetch. Not a pipeline "
              << "simulation —\nthe paper's Section 4 deliberately "
              << "evaluates predictors in isolation.\n";
    return 0;
}
