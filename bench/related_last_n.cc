/**
 * @file
 * Related-work comparison: last-n value prediction (Burtscher and
 * Zorn, the paper's reference [2]) against the paper's predictors,
 * over the benchmark suite at matched table sizes.
 *
 * Expected shape: last-n improves clearly on the last value
 * predictor but cannot reach the stride predictor (no arithmetic
 * extrapolation) nor the context predictors.
 */

#include "bench_util.hh"

#include "core/dfcm_predictor.hh"
#include "core/last_n_predictor.hh"
#include "core/last_value_predictor.hh"
#include "core/stats.hh"
#include "core/stride_predictor.hh"
#include "harness/table_printer.hh"
#include "harness/trace_cache.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace vpred;
    using harness::TablePrinter;
    bench::Banner banner("related_last_n",
                         "last-n value prediction vs paper predictors");

    harness::TraceCache cache;
    TablePrinter table({"predictor", "size_kbit", "accuracy"});

    auto runAll = [&](ValuePredictor& p) {
        PredictorStats total;
        for (const std::string& name : workloads::benchmarkNames())
            total += runTrace(p, cache.getSpan(name));
        return total;
        // (predictor state deliberately carries across benchmarks in
        //  series, like one long trace; tables are large enough that
        //  cross-benchmark pollution is negligible.)
    };

    {
        LastValuePredictor p(16);
        const PredictorStats s = runAll(p);
        table.addRow({p.name(), TablePrinter::fmt(p.storageKbit(), 1),
                      TablePrinter::fmt(s.accuracy())});
    }
    for (unsigned n : {2u, 4u, 8u}) {
        LastNPredictor p(16, n);
        const PredictorStats s = runAll(p);
        table.addRow({p.name(), TablePrinter::fmt(p.storageKbit(), 1),
                      TablePrinter::fmt(s.accuracy())});
    }
    {
        StridePredictor p(16);
        const PredictorStats s = runAll(p);
        table.addRow({p.name(), TablePrinter::fmt(p.storageKbit(), 1),
                      TablePrinter::fmt(s.accuracy())});
    }
    {
        DfcmPredictor p({.l1_bits = 16, .l2_bits = 12});
        const PredictorStats s = runAll(p);
        table.addRow({p.name(), TablePrinter::fmt(p.storageKbit(), 1),
                      TablePrinter::fmt(s.accuracy())});
    }

    table.print(std::cout);
    table.writeCsv("related_last_n");
    return 0;
}
