/**
 * @file
 * Figure 16 reproduction: FCM, DFCM and perfect-metapredictor
 * hybrids (STRIDE+FCM, STRIDE+DFCM) vs. level-2 size; all level-1
 * tables and the stride table have 2^16 entries.
 *
 * Paper shape: DFCM outperforms the perfect STRIDE+FCM hybrid at
 * every level-2 size (by a small margin); perfect STRIDE+DFCM gains
 * only .02-.04 over the plain DFCM. A realizable counter-meta hybrid
 * is included as an extra series to show the oracle gap.
 */

#include "bench_util.hh"

#include "harness/experiment.hh"
#include "harness/sweep.hh"
#include "harness/table_printer.hh"

int
main()
{
    using namespace vpred;
    using harness::TablePrinter;
    bench::Banner banner("fig16", "hybrid predictors vs DFCM");

    harness::TraceCache cache;
    TablePrinter table({"l2_bits", "fcm", "dfcm", "stride+fcm",
                        "stride+dfcm", "real_stride+fcm"});

    for (unsigned l2 : harness::paperL2Bits()) {
        PredictorConfig cfg;
        cfg.l1_bits = 16;
        cfg.l2_bits = l2;

        auto acc = [&](PredictorKind kind) {
            cfg.kind = kind;
            return runBenchmarks(cache, cfg).accuracy();
        };
        table.addRow({TablePrinter::fmt(std::uint64_t{l2}),
                      TablePrinter::fmt(acc(PredictorKind::Fcm)),
                      TablePrinter::fmt(acc(PredictorKind::Dfcm)),
                      TablePrinter::fmt(
                              acc(PredictorKind::PerfectStrideFcm)),
                      TablePrinter::fmt(
                              acc(PredictorKind::PerfectStrideDfcm)),
                      TablePrinter::fmt(
                              acc(PredictorKind::HybridStrideFcm))});
    }

    table.print(std::cout);
    table.writeCsv("fig16_hybrid");
    return 0;
}
