/**
 * @file
 * Figure 14 reproduction: aliasing types of *mispredictions*, as a
 * fraction of all predictions (so each row sums to the benchmark's
 * misprediction rate), FCM and DFCM at 2^12/2^12.
 *
 * Paper shape: only l1, hash and l2_priv matter, hash dominates;
 * the DFCM's hash share drops (34% -> 25% on average) and the total
 * misprediction rate drops by almost the same amount.
 */

#include "bench_util.hh"

#include "core/alias_analysis.hh"
#include "harness/table_printer.hh"
#include "harness/trace_cache.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace vpred;
    using harness::TablePrinter;
    bench::Banner banner("fig14",
                         "aliasing-type fractions of mispredictions");

    harness::TraceCache cache;
    FcmConfig cfg;
    cfg.l1_bits = 12;
    cfg.l2_bits = 12;

    TablePrinter table({"predictor", "benchmark", "l1", "hash",
                        "l2_priv", "l2_pc", "none", "total_wrong"});
    double fcm_hash_avg = 0, dfcm_hash_avg = 0;
    double fcm_wrong_avg = 0, dfcm_wrong_avg = 0;

    for (const bool differential : {false, true}) {
        const char* pname = differential ? "dfcm" : "fcm";
        AliasBreakdown avg;
        for (const std::string& name : workloads::benchmarkNames()) {
            AliasAnalyzer analyzer(cfg, differential);
            const AliasBreakdown b = analyzer.run(cache.getSpan(name));
            avg += b;
            double total_wrong = 0;
            for (unsigned t = 0; t < kAliasTypeCount; ++t)
                total_wrong += b.fractionWrong(static_cast<AliasType>(t));
            table.addRow(
                    {pname, name,
                     TablePrinter::fmt(b.fractionWrong(AliasType::L1), 3),
                     TablePrinter::fmt(b.fractionWrong(AliasType::Hash),
                                       3),
                     TablePrinter::fmt(
                             b.fractionWrong(AliasType::L2Priv), 3),
                     TablePrinter::fmt(b.fractionWrong(AliasType::L2Pc),
                                       3),
                     TablePrinter::fmt(b.fractionWrong(AliasType::None),
                                       3),
                     TablePrinter::fmt(total_wrong, 3)});
        }
        double avg_wrong = 0;
        for (unsigned t = 0; t < kAliasTypeCount; ++t)
            avg_wrong += avg.fractionWrong(static_cast<AliasType>(t));
        table.addRow(
                {pname, "avg",
                 TablePrinter::fmt(avg.fractionWrong(AliasType::L1), 3),
                 TablePrinter::fmt(avg.fractionWrong(AliasType::Hash), 3),
                 TablePrinter::fmt(avg.fractionWrong(AliasType::L2Priv),
                                   3),
                 TablePrinter::fmt(avg.fractionWrong(AliasType::L2Pc), 3),
                 TablePrinter::fmt(avg.fractionWrong(AliasType::None), 3),
                 TablePrinter::fmt(avg_wrong, 3)});
        if (differential) {
            dfcm_hash_avg = avg.fractionWrong(AliasType::Hash);
            dfcm_wrong_avg = avg_wrong;
        } else {
            fcm_hash_avg = avg.fractionWrong(AliasType::Hash);
            fcm_wrong_avg = avg_wrong;
        }
    }

    table.print(std::cout);
    table.writeCsv("fig14_alias_wrong");

    std::cout << "\nhash-caused mispredictions: FCM "
              << TablePrinter::fmt(fcm_hash_avg, 3) << " -> DFCM "
              << TablePrinter::fmt(dfcm_hash_avg, 3)
              << " (paper: .34 -> .25)\n"
              << "total mispredictions:       FCM "
              << TablePrinter::fmt(fcm_wrong_avg, 3) << " -> DFCM "
              << TablePrinter::fmt(dfcm_wrong_avg, 3) << "\n"
              << "hash share of DFCM mispredictions: "
              << TablePrinter::fmt(dfcm_hash_avg / dfcm_wrong_avg, 3)
              << " (paper: .59)\n";
    return 0;
}
