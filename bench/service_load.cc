/**
 * @file
 * Load generator for the always-on sharded prediction service.
 *
 * Drives REPRO_SERVICE_STREAMS concurrent value streams (default one
 * million; REPRO_SERVICE_SMOKE=1 selects a ~10k-stream smoke run for
 * CI) through a PredictionService for REPRO_SERVICE_ROUNDS rounds.
 * Multiple producer threads enqueue into the shards' MPSC queues
 * while the main thread pumps; producers are flow-controlled against
 * the drain counter so queue memory stays bounded no matter how far
 * the kernels fall behind. Every stream follows a per-stream stride
 * sequence derived from its id, so the DFCM kernels converge to a
 * high hit rate once warm — and the stream population is far larger
 * than the resident capacity, so eviction, spill and restore run
 * continuously at full load.
 *
 * Emits results/BENCH_service.json (schema_version 6): sustained
 * ingest records/sec as a gated "_records_per_sec" metric, p50/p99
 * ingest-to-predict latency, the col-0 hit rate, peak RSS, a
 * "service" section with the shard/eviction counters, a "packing"
 * section observing the stream-packed kernel feeds (segment flushes,
 * 16-lane steps, mean lane occupancy, gather- vs scalar-path record
 * counts), and a "drain_batches" section with the per-drain
 * batch-size distribution.
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/cpu_features.hh"
#include "core/env_util.hh"
#include "harness/results_json.hh"
#include "service/prediction_service.hh"

namespace
{

using vpred::Value;
using vpred::service::PredictionService;
using vpred::service::ServiceConfig;
using vpred::service::mixStreamId;

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count());
}

/** Resident-set size in MiB from /proc/self/status (0 if absent). */
double
rssMib()
{
    std::ifstream in("/proc/self/status");
    std::string key;
    while (in >> key) {
        if (key == "VmRSS:") {
            double kb = 0.0;
            in >> kb;
            return kb / 1024.0;
        }
        in.ignore(256, '\n');
    }
    return 0.0;
}

/** Round r of stream s: a per-stream base plus a per-stream stride —
 *  deterministic, predictable-once-warm, different per stream. */
Value
streamValue(std::uint64_t stream, std::uint64_t round)
{
    const std::uint64_t base = mixStreamId(stream);
    const std::uint64_t stride = (mixStreamId(stream ^ 0xabcdef) & 0xff) + 1;
    return (base + round * stride) & 0xffffffffull;
}

} // namespace

int
main()
{
    const bool smoke = vpred::envFlagOr("REPRO_SERVICE_SMOKE", false);
    const std::uint64_t n_streams = vpred::envUIntOr(
            "REPRO_SERVICE_STREAMS", smoke ? 10'000 : 1'000'000, 1,
            100'000'000);
    const std::uint64_t rounds =
            vpred::envUIntOr("REPRO_SERVICE_ROUNDS", 4, 1, 10'000);

    ServiceConfig cfg = ServiceConfig::fromEnv();
    cfg.l1_bits = smoke ? 10 : 14;
    PredictionService service(cfg);

    const unsigned n_producers =
            std::min(4u, std::max(1u, service.shards()));
    // Flow-control window: how far producers may run ahead of the
    // pump, in records. Bounds queue memory at ~window * 24 bytes.
    const std::uint64_t window = std::uint64_t{65536} * n_producers;

    std::atomic<std::uint64_t> enqueued{0};
    std::atomic<std::uint64_t> drained{0};

    std::cout << "service_load: " << n_streams << " streams x "
              << rounds << " rounds over " << service.shards()
              << " shards (resident "
              << (std::uint64_t{1} << cfg.l1_bits) << "/shard)\n";

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> producers;
    for (unsigned p = 0; p < n_producers; ++p) {
        producers.emplace_back([&, p] {
            const std::uint64_t lo = n_streams * p / n_producers;
            const std::uint64_t hi = n_streams * (p + 1) / n_producers;
            for (std::uint64_t r = 0; r < rounds; ++r) {
                for (std::uint64_t s = lo; s < hi; ++s) {
                    while (enqueued.load(std::memory_order_relaxed)
                                   - drained.load(
                                           std::memory_order_relaxed)
                           > window)
                        std::this_thread::yield();
                    service.ingest(s, streamValue(s, r), nowNs());
                    enqueued.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }

    const std::uint64_t total = n_streams * rounds;
    double peak_rss = 0.0;
    std::uint64_t pumps = 0;
    while (drained.load(std::memory_order_relaxed) < total) {
        const std::size_t got = service.pump(nowNs());
        drained.fetch_add(got, std::memory_order_relaxed);
        ++pumps;
        if ((pumps & 0x3f) == 0)
            peak_rss = std::max(peak_rss, rssMib());
        if (got == 0)
            std::this_thread::yield();
    }
    for (std::thread& t : producers)
        t.join();
    const double wall = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
    peak_rss = std::max(peak_rss, rssMib());

    const auto stats = service.stats();
    const auto latency = service.latency();
    const auto drain_batches = service.drainBatchRecords();
    const double rate = static_cast<double>(total) / wall;
    const double lane_occupancy = stats.packed_steps == 0
            ? 0.0
            : static_cast<double>(stats.gather_records
                                  + stats.scalar_records)
                    / static_cast<double>(stats.packed_steps * 16);
    const double hit_rate = stats.predictions == 0
            ? 0.0
            : static_cast<double>(stats.correct_col0)
                    / static_cast<double>(stats.predictions);
    const auto p50 = latency.quantileNs(0.50);
    const auto p99 = latency.quantileNs(0.99);

    std::cout << "  ingested " << stats.ingested << " records in "
              << wall << " s  (" << rate / 1e6 << " M records/s)\n"
              << "  hit rate (col 0): " << hit_rate << "\n"
              << "  latency p50 " << static_cast<double>(p50) / 1e3
              << " us, p99 " << static_cast<double>(p99) / 1e3
              << " us\n"
              << "  resident " << stats.resident_streams << ", spilled "
              << stats.spilled_streams << ", evictions "
              << stats.evictions << ", restores " << stats.restores
              << "\n  packing: " << stats.flushes << " flushes, "
              << stats.packed_steps << " steps, occupancy "
              << lane_occupancy << ", gather " << stats.gather_records
              << ", scalar " << stats.scalar_records << " ("
              << vpred::simdBackendName(vpred::activeSimdBackend())
              << ")\n  peak RSS " << peak_rss << " MiB\n";

    vpred::harness::ResultsJsonWriter json("service", 1.0,
                                           service.shards());
    json.setWallSeconds(wall);
    vpred::harness::SweepExecution exec;
    exec.simd_backend =
            vpred::simdBackendName(vpred::activeSimdBackend());
    exec.vector_width =
            vpred::simdVectorBits(vpred::activeSimdBackend());
    json.setExecution(exec);
    json.addMetric("service_ingest_records_per_sec", rate);
    json.addMetric("service_p50_ingest_to_predict_ns",
                   static_cast<double>(p50));
    json.addMetric("service_p99_ingest_to_predict_ns",
                   static_cast<double>(p99));
    json.addMetric("service_hit_rate_col0", hit_rate);
    json.addMetric("service_peak_rss_mib", peak_rss);
    json.addSection(
            "service",
            {{"shards", static_cast<double>(service.shards())},
             {"streams", static_cast<double>(n_streams)},
             {"rounds", static_cast<double>(rounds)},
             {"records", static_cast<double>(total)},
             {"resident_streams",
              static_cast<double>(stats.resident_streams)},
             {"spilled_streams",
              static_cast<double>(stats.spilled_streams)},
             {"evictions", static_cast<double>(stats.evictions)},
             {"restores", static_cast<double>(stats.restores)},
             {"pump_calls", static_cast<double>(pumps)}});
    json.addSection(
            "packing",
            {{"flushes", static_cast<double>(stats.flushes)},
             {"packed_steps", static_cast<double>(stats.packed_steps)},
             {"mean_lane_occupancy", lane_occupancy},
             {"gather_records",
              static_cast<double>(stats.gather_records)},
             {"scalar_records",
              static_cast<double>(stats.scalar_records)}});
    json.addSection(
            "drain_batches",
            {{"drains", static_cast<double>(drain_batches.count())},
             {"p50_records",
              static_cast<double>(drain_batches.quantileNs(0.50))},
             {"p90_records",
              static_cast<double>(drain_batches.quantileNs(0.90))},
             {"p99_records",
              static_cast<double>(drain_batches.quantileNs(0.99))}});
    if (!json.write())
        return 1;
    return 0;
}
