/**
 * @file
 * Load generator for the always-on sharded prediction service.
 *
 * Drives REPRO_SERVICE_STREAMS concurrent value streams (default one
 * million; REPRO_SERVICE_SMOKE=1 selects a ~10k-stream smoke run for
 * CI) through a PredictionService for REPRO_SERVICE_ROUNDS rounds.
 * Each producer thread registers with the service and pushes into
 * its private SPSC rings; ring-full backpressure (not a flow-control
 * window) bounds in-flight memory, and producers account their
 * blocked time explicitly — each record's tick is re-stamped on
 * retry, so the ingest-to-predict histogram measures the fabric and
 * the producer_blocked histogram measures the waits, instead of one
 * number folding both. Every stream follows a per-stream stride
 * sequence derived from its id, so the DFCM kernels converge to a
 * high hit rate once warm — and the stream population is far larger
 * than the resident capacity, so eviction, spill and restore run
 * continuously at full load.
 *
 * REPRO_SERVICE_SCALING=1 appends the thread×SIMD composition sweep:
 * {SIMD backend} x {1,2,4 producer threads} x {shard counts} points
 * at REPRO_SERVICE_SCALING_STREAMS streams each, emitted as the
 * "scaling" table (one row per point). Under REPRO_SERVICE_SMOKE=1
 * the sweep reduces to 2 points so CI stays bounded.
 *
 * Emits results/BENCH_service.json (schema_version 7): sustained
 * ingest records/sec as a gated "_records_per_sec" metric, p50/p99
 * ingest-to-predict latency (gated as latency quantiles), the col-0
 * hit rate, peak RSS, the "service"/"packing"/"drain_batches"
 * sections, an "ingest_fabric" section (ring geometry, publish and
 * full-ring counters, adaptive-quota activity), a "producer_blocked"
 * section (the distinct blocked-time histogram), and the optional
 * "scaling" table.
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/cpu_features.hh"
#include "core/env_util.hh"
#include "harness/results_json.hh"
#include "service/prediction_service.hh"

namespace
{

using vpred::SimdBackend;
using vpred::Value;
using vpred::service::IngestStats;
using vpred::service::LatencyHistogram;
using vpred::service::mixStreamId;
using vpred::service::PredictionService;
using vpred::service::Producer;
using vpred::service::ServiceConfig;
using vpred::service::ServiceStats;

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count());
}

/** Resident-set size in MiB from /proc/self/status (0 if absent). */
double
rssMib()
{
    std::ifstream in("/proc/self/status");
    std::string key;
    while (in >> key) {
        if (key == "VmRSS:") {
            double kb = 0.0;
            in >> kb;
            return kb / 1024.0;
        }
        in.ignore(256, '\n');
    }
    return 0.0;
}

/** Round r of stream s: a per-stream base plus a per-stream stride —
 *  deterministic, predictable-once-warm, different per stream. */
Value
streamValue(std::uint64_t stream, std::uint64_t round)
{
    const std::uint64_t base = mixStreamId(stream);
    const std::uint64_t stride = (mixStreamId(stream ^ 0xabcdef) & 0xff) + 1;
    return (base + round * stride) & 0xffffffffull;
}

/** Everything one load run produces, for the JSON and the console. */
struct LoadResult
{
    double wall = 0.0;
    std::uint64_t records = 0;
    double rate = 0.0;
    double peak_rss = 0.0;
    std::uint64_t pumps = 0;
    ServiceStats stats;
    IngestStats ingest;
    LatencyHistogram latency;
    LatencyHistogram drain_batches;
    LatencyHistogram blocked;  //!< per-backpressure-episode wait
};

/**
 * Run @p n_producers registered producer threads pushing
 * @p n_streams x @p rounds records through @p service while this
 * thread pumps. Producers ride out ring-full by yielding, re-stamp
 * the record's tick on every retry, and account the episode in the
 * blocked histogram and the service's ingestStats().
 */
LoadResult
runLoad(PredictionService& service, unsigned n_producers,
        std::uint64_t n_streams, std::uint64_t rounds)
{
    std::vector<LatencyHistogram> blocked(n_producers);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> producers;
    for (unsigned p = 0; p < n_producers; ++p) {
        producers.emplace_back([&service, &blocked, p, n_producers,
                                n_streams, rounds] {
            Producer prod = service.registerProducer();
            const std::uint64_t lo = n_streams * p / n_producers;
            const std::uint64_t hi = n_streams * (p + 1) / n_producers;
            // Re-read the clock every kStampStride records rather
            // than every record: the vDSO read (~20 ns) would
            // otherwise rival the push itself, and the ingest-side
            // latency histogram's 2-to-the-k buckets cannot resolve
            // a sub-microsecond stamp stride anyway. Backpressure
            // retries always re-stamp, so blocked time never leaks
            // into the ingest-to-predict latency.
            constexpr std::uint64_t kStampStride = 16;
            std::uint64_t tick = nowNs();
            std::uint64_t until_stamp = kStampStride;
            for (std::uint64_t r = 0; r < rounds; ++r) {
                for (std::uint64_t s = lo; s < hi; ++s) {
                    const Value v = streamValue(s, r);
                    if (--until_stamp == 0) {
                        tick = nowNs();
                        until_stamp = kStampStride;
                    }
                    if (!service.tryIngest(prod, s, v, tick)) {
                        const std::uint64_t b0 = nowNs();
                        do {
                            std::this_thread::yield();
                            tick = nowNs();
                        } while (!service.tryIngest(prod, s, v, tick));
                        until_stamp = kStampStride;
                        blocked[p].record(tick - b0);
                        service.noteBlocked(prod, tick - b0);
                    }
                }
            }
            service.unregisterProducer(prod);  // flushes partials
        });
    }

    LoadResult res;
    res.records = n_streams * rounds;
    std::uint64_t drained = 0;
    while (drained < res.records) {
        const std::size_t got = service.pump(nowNs());
        drained += got;
        ++res.pumps;
        if ((res.pumps & 0x3f) == 0)
            res.peak_rss = std::max(res.peak_rss, rssMib());
        if (got == 0)
            std::this_thread::yield();
    }
    for (std::thread& t : producers)
        t.join();
    res.wall = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    res.peak_rss = std::max(res.peak_rss, rssMib());
    res.rate = static_cast<double>(res.records) / res.wall;
    res.stats = service.stats();
    res.ingest = service.ingestStats();
    res.latency = service.latency();
    res.drain_batches = service.drainBatchRecords();
    for (const LatencyHistogram& h : blocked)
        res.blocked.merge(h);
    return res;
}

double
hitRate(const ServiceStats& s)
{
    return s.predictions == 0
            ? 0.0
            : static_cast<double>(s.correct_col0)
                    / static_cast<double>(s.predictions);
}

} // namespace

int
main()
{
    const bool smoke = vpred::envFlagOr("REPRO_SERVICE_SMOKE", false);
    const bool scaling =
            vpred::envFlagOr("REPRO_SERVICE_SCALING", false);
    const std::uint64_t n_streams = vpred::envUIntOr(
            "REPRO_SERVICE_STREAMS", smoke ? 10'000 : 1'000'000, 1,
            100'000'000);
    const std::uint64_t rounds =
            vpred::envUIntOr("REPRO_SERVICE_ROUNDS", 4, 1, 10'000);

    ServiceConfig cfg = ServiceConfig::fromEnv();
    cfg.l1_bits = smoke ? 10 : 14;
    if (!vpred::envRaw("REPRO_SERVICE_RING_CAP")) {
        // Size the rings for this bench's firehose the way l1_bits
        // is sized for its stream population: deep enough that the
        // drain sweeps stay as large as the old unbounded queue's
        // swap batches (~32k records), so per-drain and per-segment
        // fixed costs amortize. 64Ki slots x 24 B = 1.5 MiB/ring.
        cfg.ring_capacity = 65536;
    }
    if (!vpred::envRaw("REPRO_SERVICE_RING_SLO_NS")) {
        // The drain SLO bounds ingest-to-predict p99, which at this
        // bench's ring depth is dominated by time *queued in the
        // ring*: a saturated 64Ki ring is itself ~20 ms of work per
        // producer. The library default (50 ms) is tuned for its
        // default 4Ki rings; scale it with the deeper rings so the
        // adaptive quota reacts to drains slowing down, not to the
        // depth we deliberately configured.
        cfg.drain_slo_ns = 250'000'000;
    }
    std::optional<PredictionService> service;
    service.emplace(cfg);
    const unsigned n_shards = service->shards();

    const unsigned n_producers = static_cast<unsigned>(
            vpred::envUIntOr("REPRO_SERVICE_PRODUCERS",
                             std::min<std::uint64_t>(
                                     4, std::max(1u, n_shards)),
                             1, cfg.max_producers));

    std::cout << "service_load: " << n_streams << " streams x "
              << rounds << " rounds over " << n_shards
              << " shards (resident "
              << (std::uint64_t{1} << cfg.l1_bits) << "/shard), "
              << n_producers << " producers, ring "
              << cfg.ring_capacity << " x publish "
              << cfg.publish_batch << "\n";

    // Best-of-N like the scaling sweep points and check.sh's perf
    // gate: the measured section is ~1 s of wall clock, squarely in
    // the regime where one scheduler burst on a shared box moves the
    // committed headline by more than a real regression would. The
    // kernel-state counters (hit rate, evictions, spills) are
    // deterministic across attempts; only wall time varies. Each
    // attempt gets a fresh service, and the previous one is torn
    // down first so peak RSS still measures a single instance.
    const unsigned attempts = smoke
            ? 1
            : static_cast<unsigned>(vpred::envUIntOr(
                      "REPRO_SERVICE_ATTEMPTS", 2, 1, 16));
    LoadResult r = runLoad(*service, n_producers, n_streams, rounds);
    for (unsigned a = 1; a < attempts; ++a) {
        service.reset();
        service.emplace(cfg);
        LoadResult attempt =
                runLoad(*service, n_producers, n_streams, rounds);
        if (attempt.rate > r.rate)
            r = std::move(attempt);
    }
    service.reset();

    const double lane_occupancy = r.stats.packed_steps == 0
            ? 0.0
            : static_cast<double>(r.stats.gather_records
                                  + r.stats.scalar_records)
                    / static_cast<double>(r.stats.packed_steps * 16);
    const double hit_rate = hitRate(r.stats);
    const auto p50 = r.latency.quantileNs(0.50);
    const auto p99 = r.latency.quantileNs(0.99);
    const double mean_publish = r.ingest.publishes == 0
            ? 0.0
            : static_cast<double>(r.ingest.published_records)
                    / static_cast<double>(r.ingest.publishes);

    std::cout << "  ingested " << r.stats.ingested << " records in "
              << r.wall << " s  (" << r.rate / 1e6
              << " M records/s)\n"
              << "  hit rate (col 0): " << hit_rate << "\n"
              << "  latency p50 " << static_cast<double>(p50) / 1e3
              << " us, p99 " << static_cast<double>(p99) / 1e3
              << " us\n"
              << "  resident " << r.stats.resident_streams
              << ", spilled " << r.stats.spilled_streams
              << ", evictions " << r.stats.evictions << ", restores "
              << r.stats.restores << "\n  packing: " << r.stats.flushes
              << " flushes, " << r.stats.packed_steps
              << " steps, occupancy " << lane_occupancy << ", gather "
              << r.stats.gather_records << ", scalar "
              << r.stats.scalar_records << " ("
              << vpred::simdBackendName(vpred::activeSimdBackend())
              << ")\n  fabric: " << r.ingest.publishes
              << " publishes (mean batch " << mean_publish << "), "
              << r.ingest.full_events << " ring-full, blocked "
              << static_cast<double>(r.ingest.blocked_ns) / 1e6
              << " ms over " << r.ingest.blocked_events
              << " episodes, max backlog " << r.stats.max_backlog
              << ", quota +" << r.stats.quota_grows << "/-"
              << r.stats.quota_shrinks << "\n  peak RSS "
              << r.peak_rss << " MiB\n";

    vpred::harness::ResultsJsonWriter json("service", 1.0, n_shards);
    json.setWallSeconds(r.wall);
    vpred::harness::SweepExecution exec;
    exec.simd_backend =
            vpred::simdBackendName(vpred::activeSimdBackend());
    exec.vector_width =
            vpred::simdVectorBits(vpred::activeSimdBackend());
    json.setExecution(exec);
    json.addMetric("service_ingest_records_per_sec", r.rate);
    json.addMetric("service_p50_ingest_to_predict_ns",
                   static_cast<double>(p50));
    json.addMetric("service_p99_ingest_to_predict_ns",
                   static_cast<double>(p99));
    json.addMetric("service_hit_rate_col0", hit_rate);
    json.addMetric("service_peak_rss_mib", r.peak_rss);
    json.addSection(
            "service",
            {{"shards", static_cast<double>(n_shards)},
             {"streams", static_cast<double>(n_streams)},
             {"rounds", static_cast<double>(rounds)},
             {"records", static_cast<double>(r.records)},
             {"resident_streams",
              static_cast<double>(r.stats.resident_streams)},
             {"spilled_streams",
              static_cast<double>(r.stats.spilled_streams)},
             {"evictions", static_cast<double>(r.stats.evictions)},
             {"restores", static_cast<double>(r.stats.restores)},
             {"pump_calls", static_cast<double>(r.pumps)}});
    json.addSection(
            "packing",
            {{"flushes", static_cast<double>(r.stats.flushes)},
             {"packed_steps",
              static_cast<double>(r.stats.packed_steps)},
             {"mean_lane_occupancy", lane_occupancy},
             {"gather_records",
              static_cast<double>(r.stats.gather_records)},
             {"scalar_records",
              static_cast<double>(r.stats.scalar_records)}});
    json.addSection(
            "drain_batches",
            {{"drains", static_cast<double>(r.drain_batches.count())},
             {"p50_records",
              static_cast<double>(r.drain_batches.quantileNs(0.50))},
             {"p90_records",
              static_cast<double>(r.drain_batches.quantileNs(0.90))},
             {"p99_records",
              static_cast<double>(r.drain_batches.quantileNs(0.99))}});
    json.addSection(
            "ingest_fabric",
            {{"producers", static_cast<double>(n_producers)},
             {"ring_capacity",
              static_cast<double>(cfg.ring_capacity)},
             {"publish_batch",
              static_cast<double>(cfg.publish_batch)},
             {"publishes", static_cast<double>(r.ingest.publishes)},
             {"published_records",
              static_cast<double>(r.ingest.published_records)},
             {"mean_publish_batch", mean_publish},
             {"full_events",
              static_cast<double>(r.ingest.full_events)},
             {"max_backlog",
              static_cast<double>(r.stats.max_backlog)},
             {"quota_grows",
              static_cast<double>(r.stats.quota_grows)},
             {"quota_shrinks",
              static_cast<double>(r.stats.quota_shrinks)}});
    // The blocked-time histogram is deliberately its own section —
    // producer waits must not hide inside the ingest-to-predict
    // quantiles above (ticks are re-stamped per retry), and must not
    // be perf-gated (backpressure volume is load-shape, not
    // regression).
    json.addSection(
            "producer_blocked",
            {{"episodes", static_cast<double>(r.blocked.count())},
             {"total_blocked_ns",
              static_cast<double>(r.ingest.blocked_ns)},
             {"p50_blocked_ns",
              static_cast<double>(r.blocked.quantileNs(0.50))},
             {"p99_blocked_ns",
              static_cast<double>(r.blocked.quantileNs(0.99))}});

    if (scaling) {
        // The thread x SIMD composition sweep. Each point is a fresh
        // service (cold kernels, explicit backend) at a reduced
        // stream population so the whole grid stays tractable; the
        // monotonicity acceptance reads the fixed-shard producer
        // column. Smoke keeps 2 points for CI.
        const std::uint64_t sweep_streams = vpred::envUIntOr(
                "REPRO_SERVICE_SCALING_STREAMS",
                smoke ? 5'000 : 1'000'000, 1, 100'000'000);
        const std::uint64_t sweep_rounds = smoke ? 2 : 4;
        // Best-of-N like tools/check.sh's perf gate: a sweep point
        // shorter than ~1 s is at the mercy of scheduler noise on a
        // shared box.
        const unsigned sweep_attempts = smoke ? 1 : 2;
        // The sweep fixes the *per-producer* resources — notably a
        // deliberately small ring — so the producer axis measures
        // what adding a producer buys the fabric: aggregate in-flight
        // capacity (producers x ring) and with it larger, better
        // amortized drains and fewer producer/consumer handoffs. At
        // the headline point's 64Ki rings a single producer already
        // saturates the drain path and the curve flattens into noise.
        const std::size_t sweep_ring_capacity = vpred::envRaw(
                "REPRO_SERVICE_RING_CAP") ? cfg.ring_capacity : 128;
        std::vector<SimdBackend> backends;
        std::vector<unsigned> producer_counts;
        std::vector<unsigned> shard_counts;
        if (smoke) {
            backends = {vpred::activeSimdBackend()};
            producer_counts = {1, 2};
            shard_counts = {1};
        } else {
            backends = vpred::availableSimdBackends();
            producer_counts = {1, 2, 4};
            shard_counts = {1, 2};
        }
        std::vector<std::vector<vpred::harness::JsonValue>> rows;
        for (const SimdBackend backend : backends) {
            for (const unsigned shards : shard_counts) {
                for (const unsigned producers : producer_counts) {
                    ServiceConfig pc = cfg;
                    pc.shards = shards;
                    pc.backend = backend;
                    pc.ring_capacity = sweep_ring_capacity;
                    LoadResult pr;
                    for (unsigned a = 0; a < sweep_attempts; ++a) {
                        PredictionService psvc(pc);
                        LoadResult attempt = runLoad(
                                psvc, producers, sweep_streams,
                                sweep_rounds);
                        if (a == 0 || attempt.rate > pr.rate)
                            pr = std::move(attempt);
                    }
                    std::cout << "  scaling "
                              << vpred::simdBackendName(backend)
                              << " x " << producers << "p x "
                              << shards << "s: " << pr.rate / 1e6
                              << " M records/s, p99 "
                              << static_cast<double>(
                                         pr.latency.quantileNs(0.99))
                                    / 1e3
                              << " us, blocked "
                              << static_cast<double>(
                                         pr.ingest.blocked_ns)
                                    / 1e6
                              << " ms\n";
                    rows.push_back(
                            {vpred::simdBackendName(backend),
                             static_cast<double>(producers),
                             static_cast<double>(shards),
                             static_cast<double>(pr.records),
                             pr.rate,
                             static_cast<double>(
                                     pr.latency.quantileNs(0.50)),
                             static_cast<double>(
                                     pr.latency.quantileNs(0.99)),
                             static_cast<double>(
                                     pr.ingest.full_events),
                             static_cast<double>(
                                     pr.ingest.blocked_ns),
                             static_cast<double>(
                                     pr.stats.max_backlog),
                             static_cast<double>(
                                     pr.stats.quota_grows),
                             static_cast<double>(
                                     pr.stats.quota_shrinks),
                             hitRate(pr.stats)});
                }
            }
        }
        json.addTable("scaling",
                      {"backend", "producers", "shards", "records",
                       "records_per_sec", "p50_ingest_to_predict_ns",
                       "p99_ingest_to_predict_ns", "full_events",
                       "blocked_ns", "max_backlog", "quota_grows",
                       "quota_shrinks", "hit_rate_col0"},
                      std::move(rows));
    }

    if (!json.write())
        return 1;
    return 0;
}
