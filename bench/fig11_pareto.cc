/**
 * @file
 * Figure 11 reproduction.
 *
 * (a) DFCM accuracy vs total storage for level-1 sizes 2^10..2^16,
 *     level-2 swept 2^8..2^20. Paper shape: higher accuracies than
 *     FCM, influence of the level-2 size saturates earlier ("the
 *     knee is sharper").
 * (b) Pareto frontiers of FCM vs DFCM over the full (l1, l2) grids.
 *     Paper: DFCM ahead by .06-.09 except at the smallest sizes,
 *     e.g. .66 vs .57 around 200 Kbit (+15%).
 */

#include "bench_util.hh"

#include "harness/experiment.hh"
#include "harness/pareto.hh"
#include "harness/sweep.hh"
#include "harness/table_printer.hh"

int
main()
{
    using namespace vpred;
    using harness::TablePrinter;
    bench::Banner banner("fig11",
                         "DFCM size curves and FCM/DFCM Pareto graphs");

    harness::TraceCache cache;

    // --- (a): DFCM curves
    TablePrinter ta({"l1_bits", "l2_bits", "size_kbit", "accuracy"});
    std::vector<harness::ParetoPoint> dfcm_points;
    for (unsigned l1 : harness::paperDfcmL1Bits()) {
        for (unsigned l2 : harness::paperL2Bits()) {
            PredictorConfig cfg;
            cfg.kind = PredictorKind::Dfcm;
            cfg.l1_bits = l1;
            cfg.l2_bits = l2;
            const harness::SuiteResult r = runBenchmarks(cache, cfg);
            ta.addRow({TablePrinter::fmt(std::uint64_t{l1}),
                       TablePrinter::fmt(std::uint64_t{l2}),
                       TablePrinter::fmt(r.storageKbit(), 1),
                       TablePrinter::fmt(r.accuracy())});
            dfcm_points.push_back({r.storageKbit(), r.accuracy(),
                                   r.predictor});
        }
    }
    std::cout << "(a) DFCM accuracy vs size\n";
    ta.print(std::cout);
    ta.writeCsv("fig11a_dfcm_curves");

    // --- (b): Pareto frontiers. The FCM grid includes the smaller
    // level-1 sizes of Figure 3 so its frontier is not handicapped.
    std::vector<harness::ParetoPoint> fcm_points;
    for (unsigned l1 : harness::paperFcmL1Bits()) {
        for (unsigned l2 : harness::paperL2Bits()) {
            PredictorConfig cfg;
            cfg.kind = PredictorKind::Fcm;
            cfg.l1_bits = l1;
            cfg.l2_bits = l2;
            const harness::SuiteResult r = runBenchmarks(cache, cfg);
            fcm_points.push_back({r.storageKbit(), r.accuracy(),
                                  r.predictor});
        }
    }
    // Extend the DFCM candidate set with the small level-1 sizes too.
    for (unsigned l1 : {4u, 6u, 8u}) {
        for (unsigned l2 : harness::paperL2Bits()) {
            PredictorConfig cfg;
            cfg.kind = PredictorKind::Dfcm;
            cfg.l1_bits = l1;
            cfg.l2_bits = l2;
            const harness::SuiteResult r = runBenchmarks(cache, cfg);
            dfcm_points.push_back({r.storageKbit(), r.accuracy(),
                                   r.predictor});
        }
    }

    TablePrinter tb({"series", "size_kbit", "accuracy", "config"});
    for (const auto& [label, points] :
         {std::pair<const char*, std::vector<harness::ParetoPoint>*>{
                  "fcm", &fcm_points},
          {"dfcm", &dfcm_points}}) {
        for (const auto& p : harness::paretoFrontier(*points)) {
            tb.addRow({label, TablePrinter::fmt(p.size_kbit, 1),
                       TablePrinter::fmt(p.accuracy), p.label});
        }
    }
    std::cout << "\n(b) Pareto frontiers\n";
    tb.print(std::cout);
    tb.writeCsv("fig11b_pareto");
    return 0;
}
