/**
 * @file
 * Figure 11 reproduction.
 *
 * (a) DFCM accuracy vs total storage for level-1 sizes 2^10..2^16,
 *     level-2 swept 2^8..2^20. Paper shape: higher accuracies than
 *     FCM, influence of the level-2 size saturates earlier ("the
 *     knee is sharper").
 * (b) Pareto frontiers of FCM vs DFCM over the full (l1, l2) grids.
 *     Paper: DFCM ahead by .06-.09 except at the smallest sizes,
 *     e.g. .66 vs .57 around 200 Kbit (+15%).
 *
 * All 105 (l1, l2) configurations of both predictors run as one grid
 * through the parallel sweep executor and are mirrored into
 * results/BENCH_fig11_pareto.json.
 */

#include "bench_util.hh"

#include "harness/experiment.hh"
#include "harness/parallel_sweep.hh"
#include "harness/pareto.hh"
#include "harness/results_json.hh"
#include "harness/sweep.hh"
#include "harness/table_printer.hh"

int
main()
{
    using namespace vpred;
    using harness::TablePrinter;
    bench::Banner banner("fig11",
                         "DFCM size curves and FCM/DFCM Pareto graphs");

    harness::TraceCache cache;
    harness::ParallelSweep sweep(cache);
    harness::ResultsJsonWriter json("fig11_pareto", cache.scale(),
                                    sweep.jobs());

    // One grid: the DFCM curve configs, the full FCM Pareto grid, and
    // the small-l1 DFCM extension (the FCM grid includes the smaller
    // level-1 sizes of Figure 3 so its frontier is not handicapped).
    std::vector<PredictorConfig> configs = harness::twoLevelGrid(
            PredictorKind::Dfcm, harness::paperDfcmL1Bits(),
            harness::paperL2Bits());
    const std::size_t n_dfcm_curves = configs.size();
    for (const PredictorConfig& cfg : harness::twoLevelGrid(
                 PredictorKind::Fcm, harness::paperFcmL1Bits(),
                 harness::paperL2Bits()))
        configs.push_back(cfg);
    for (const PredictorConfig& cfg : harness::twoLevelGrid(
                 PredictorKind::Dfcm, {4, 6, 8}, harness::paperL2Bits()))
        configs.push_back(cfg);

    const std::vector<harness::SuiteResult> results =
            sweep.runGrid(configs);
    json.addGrid(configs, results);
    json.setExecution(sweep.lastExecution());
    bench::reportExecution(sweep.lastExecution());

    // --- (a): DFCM curves
    TablePrinter ta({"l1_bits", "l2_bits", "size_kbit", "accuracy"});
    std::vector<harness::ParetoPoint> fcm_points, dfcm_points;
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const harness::SuiteResult& r = results[i];
        if (i < n_dfcm_curves) {
            ta.addRow({TablePrinter::fmt(std::uint64_t{configs[i].l1_bits}),
                       TablePrinter::fmt(std::uint64_t{configs[i].l2_bits}),
                       TablePrinter::fmt(r.storageKbit(), 1),
                       TablePrinter::fmt(r.accuracy())});
        }
        (configs[i].kind == PredictorKind::Fcm ? fcm_points : dfcm_points)
                .push_back({r.storageKbit(), r.accuracy(), r.predictor});
    }
    std::cout << "(a) DFCM accuracy vs size\n";
    ta.print(std::cout);
    ta.writeCsv("fig11a_dfcm_curves");

    // --- (b): Pareto frontiers
    TablePrinter tb({"series", "size_kbit", "accuracy", "config"});
    for (const auto& [label, points] :
         {std::pair<const char*, std::vector<harness::ParetoPoint>*>{
                  "fcm", &fcm_points},
          {"dfcm", &dfcm_points}}) {
        for (const auto& p : harness::paretoFrontier(*points)) {
            tb.addRow({label, TablePrinter::fmt(p.size_kbit, 1),
                       TablePrinter::fmt(p.accuracy), p.label});
        }
    }
    std::cout << "\n(b) Pareto frontiers\n";
    tb.print(std::cout);
    tb.writeCsv("fig11b_pareto");
    json.write();
    return 0;
}
