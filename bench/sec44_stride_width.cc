/**
 * @file
 * Section 4.4 reproduction: effect of narrowing the stride values
 * stored in the DFCM level-2 table.
 *
 * Paper: 16-bit strides cost .01-.03 accuracy, 8-bit strides
 * .05-.08; the saving is not worthwhile because the level-1 table
 * dominates small configurations and the level-2 size barely matters
 * for large ones. The table reports accuracy and total size at
 * several geometries so both effects are visible.
 */

#include "bench_util.hh"

#include "harness/experiment.hh"
#include "harness/table_printer.hh"

int
main()
{
    using namespace vpred;
    using harness::TablePrinter;
    bench::Banner banner("sec44", "DFCM stored-stride width");

    harness::TraceCache cache;
    TablePrinter table({"l1_bits", "l2_bits", "stride_bits",
                        "size_kbit", "accuracy", "drop_vs_32"});

    for (unsigned l1 : {12u, 16u}) {
        for (unsigned l2 : {10u, 12u, 16u}) {
            double full = 0.0;
            for (unsigned sb : {32u, 16u, 8u}) {
                PredictorConfig cfg;
                cfg.kind = PredictorKind::Dfcm;
                cfg.l1_bits = l1;
                cfg.l2_bits = l2;
                cfg.stride_bits = sb;
                const harness::SuiteResult r = runBenchmarks(cache, cfg);
                if (sb == 32)
                    full = r.accuracy();
                table.addRow({TablePrinter::fmt(std::uint64_t{l1}),
                              TablePrinter::fmt(std::uint64_t{l2}),
                              TablePrinter::fmt(std::uint64_t{sb}),
                              TablePrinter::fmt(r.storageKbit(), 1),
                              TablePrinter::fmt(r.accuracy()),
                              TablePrinter::fmt(full - r.accuracy(),
                                                3)});
            }
        }
    }

    table.print(std::cout);
    table.writeCsv("sec44_stride_width");
    return 0;
}
