/**
 * @file
 * Ablation (beyond the paper's figures): sensitivity of the FCM and
 * DFCM to the history hash function. The paper adopts Sazeides'
 * FS R-5 as "(near) optimal" for the FCM and deliberately does not
 * re-tune it for the DFCM; this table quantifies how much the shift
 * distance (and hence the order) matters for both predictors.
 */

#include "bench_util.hh"

#include "harness/experiment.hh"
#include "harness/table_printer.hh"

int
main()
{
    using namespace vpred;
    using harness::TablePrinter;
    bench::Banner banner("ablation_hash",
                         "FS R-k hash shift sensitivity");

    harness::TraceCache cache;
    TablePrinter table({"hash", "order", "fcm", "dfcm"});

    for (unsigned shift : {2u, 3u, 4u, 5u, 6u, 8u, 12u}) {
        PredictorConfig cfg;
        cfg.l1_bits = 16;
        cfg.l2_bits = 12;
        cfg.hash_shift = shift;

        cfg.kind = PredictorKind::Fcm;
        const double fcm = runBenchmarks(cache, cfg).accuracy();
        cfg.kind = PredictorKind::Dfcm;
        const double dfcm = runBenchmarks(cache, cfg).accuracy();
        table.addRow({"FS R-" + std::to_string(shift),
                      TablePrinter::fmt(std::uint64_t{(12 + shift - 1)
                                                      / shift}),
                      TablePrinter::fmt(fcm), TablePrinter::fmt(dfcm)});
    }

    table.print(std::cout);
    table.writeCsv("ablation_hash");
    return 0;
}
