/**
 * @file
 * Figure 9 reproduction: stride-access occupancy of the level-2
 * table, FCM vs. DFCM, for norm and li.
 *
 * Paper quotes to match in shape: on norm, the FCM uses >100 entries
 * more than 100 times while the DFCM uses only 12; on li, the FCM
 * uses 3801 of 4096 entries more than 1000 times, the DFCM 582
 * ("7 times" fewer).
 */

#include "bench_util.hh"

#include "core/dfcm_predictor.hh"
#include "core/fcm_predictor.hh"
#include "core/stride_occupancy.hh"
#include "harness/table_printer.hh"
#include "harness/trace_cache.hh"

int
main()
{
    using namespace vpred;
    using harness::TablePrinter;
    bench::Banner banner(
            "fig09", "level-2 stride occupancy: FCM vs DFCM (norm, li)");

    harness::TraceCache cache;
    TablePrinter summary({"workload", "predictor", "entries>100",
                          "entries>1000", "top_entry_share"});
    TablePrinter curve({"workload", "predictor", "entry_rank",
                        "stride_accesses"});

    for (const std::string& name : {std::string("norm"),
                                    std::string("li")}) {
        FcmPredictor fcm({.l1_bits = 16, .l2_bits = 12});
        DfcmPredictor dfcm({.l1_bits = 16, .l2_bits = 12});
        const OccupancyResult rf =
                profileStrideOccupancy(fcm, cache.getSpan(name), 16);
        const OccupancyResult rd =
                profileStrideOccupancy(dfcm, cache.getSpan(name), 16);

        auto emit = [&](const char* predictor,
                        const OccupancyResult& r) {
            summary.addRow(
                    {name, predictor,
                     TablePrinter::fmt(r.entriesAccessedMoreThan(100)),
                     TablePrinter::fmt(r.entriesAccessedMoreThan(1000)),
                     TablePrinter::fmt(
                             r.stride_accesses == 0
                                     ? 0.0
                                     : static_cast<double>(
                                               r.sorted_counts.front())
                                             / static_cast<double>(
                                                     r.stride_accesses),
                             3)});
            for (std::size_t rank = 0; rank < r.sorted_counts.size();
                 rank += 64) {
                curve.addRow({name, predictor,
                              TablePrinter::fmt(std::uint64_t{rank}),
                              TablePrinter::fmt(r.sorted_counts[rank])});
            }
        };
        emit("fcm", rf);
        emit("dfcm", rd);

        const std::uint64_t f1000 = rf.entriesAccessedMoreThan(1000);
        const std::uint64_t d1000 = rd.entriesAccessedMoreThan(1000);
        if (d1000 > 0) {
            std::cout << name << ": FCM uses " << f1000
                      << " entries >1000 times, DFCM " << d1000 << " ("
                      << TablePrinter::fmt(
                                 static_cast<double>(f1000)
                                         / static_cast<double>(d1000),
                                 1)
                      << "x fewer; paper reports 7x on li)\n";
        }
    }
    std::cout << "\n";

    summary.print(std::cout);
    summary.writeCsv("fig09_summary");
    curve.writeCsv("fig09_curve");
    return 0;
}
