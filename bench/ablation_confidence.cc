/**
 * @file
 * Ablation: the paper's Section 4.2 design suggestion, implemented
 * and measured — "the design of a confidence estimator for a (D)FCM
 * predictor should include tagging the level-2 table [...] Some
 * bits of a second hashing function, orthogonal to the main one,
 * seems to be a good choice for the tag."
 *
 * The table sweeps tag widths and compares against plain saturating
 * counters and the combined gate, reporting coverage vs. accuracy
 * over the benchmark suite (level-1 2^16, level-2 2^12, as in
 * Figure 10(b)).
 */

#include "bench_util.hh"

#include "core/confidence_dfcm.hh"
#include "harness/table_printer.hh"
#include "harness/trace_cache.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace vpred;
    using harness::TablePrinter;
    bench::Banner banner("ablation_confidence",
                         "hash-alias tags as a DFCM confidence gate");

    harness::TraceCache cache;
    TablePrinter table({"gate", "tag_bits", "coverage",
                        "accuracy_of_attempted", "effective_accuracy",
                        "size_kbit"});

    auto runGate = [&](ConfidenceMode mode, unsigned tag_bits) {
        ConfidenceDfcmConfig cfg;
        cfg.l1_bits = 16;
        cfg.l2_bits = 12;
        cfg.tag_bits = tag_bits;
        cfg.mode = mode;
        GatedStats total;
        std::uint64_t size_bits = 0;
        for (const std::string& name : workloads::benchmarkNames()) {
            ConfidenceDfcm p(cfg);
            const GatedStats s = p.run(cache.getSpan(name));
            total.total += s.total;
            total.attempted += s.attempted;
            total.correct += s.correct;
            size_bits = p.storageBits();
        }
        table.addRow({confidenceModeName(mode),
                      TablePrinter::fmt(std::uint64_t{tag_bits}),
                      TablePrinter::fmt(total.coverage()),
                      TablePrinter::fmt(total.accuracy()),
                      TablePrinter::fmt(total.effectiveAccuracy()),
                      TablePrinter::fmt(
                              static_cast<double>(size_bits) / 1024.0,
                              1)});
    };

    runGate(ConfidenceMode::None, 0);
    for (unsigned bits : {1u, 2u, 4u, 6u, 8u})
        runGate(ConfidenceMode::Tag, bits);
    runGate(ConfidenceMode::Counter, 0);
    runGate(ConfidenceMode::TagAndCounter, 4);

    table.print(std::cout);
    table.writeCsv("ablation_confidence");
    std::cout << "\nReading: the tag gate trades a little coverage for "
              << "a large gain in accuracy-of-attempted,\nvalidating "
              << "the paper's suggestion that second-hash tags track "
              << "hash aliasing well.\n";
    return 0;
}
