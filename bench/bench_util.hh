/**
 * @file
 * Shared boilerplate for the figure/table reproduction binaries.
 */

#ifndef DFCM_BENCH_BENCH_UTIL_HH
#define DFCM_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <iostream>
#include <string>

#include "harness/parallel_sweep.hh"
#include "harness/trace_cache.hh"

namespace vpred::bench
{

/**
 * One-line report of how a sweep executed (multi-geometry / fused /
 * virtual, trace walks vs cells, workers, wall time). Printed by the
 * figure drivers next to the tables so console output and the BENCH
 * JSON metadata tell the same story.
 */
inline void
reportExecution(const harness::SweepExecution& e)
{
    std::cout << "[sweep path: " << e.path() << "; " << e.trace_walks
              << " trace walks for " << e.cells << " cells; jobs "
              << e.jobs << "; " << e.wall_seconds << " s]\n";
    if (e.store_enabled) {
        std::cout << "[trace store: " << e.store_hits << " hits, "
                  << e.store_misses << " misses; acquisition "
                  << e.acquisition_seconds * 1000.0 << " ms]\n";
    }
}

/** Prints the experiment banner and wall-clock time on destruction. */
class Banner
{
  public:
    Banner(const std::string& id, const std::string& description)
        : start_(std::chrono::steady_clock::now())
    {
        std::cout << "=== " << id << ": " << description << " ===\n"
                  << "trace scale: " << harness::envTraceScale()
                  << " (set REPRO_TRACE_SCALE to adjust)\n\n";
    }

    ~Banner()
    {
        const auto elapsed = std::chrono::duration_cast<
                std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - start_);
        std::cout << "\n[done in "
                  << static_cast<double>(elapsed.count()) / 1000.0
                  << " s]\n";
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace vpred::bench

#endif // DFCM_BENCH_BENCH_UTIL_HH
