/**
 * @file
 * Ablation: how the aliasing mix (Figure 13's taxonomy) shifts with
 * the level-2 table size. The paper measures one geometry
 * (2^12/2^12); this sweep shows hash aliasing draining away as the
 * level-2 table grows — the mechanism behind Figure 10's shrinking
 * FCM/DFCM gap.
 */

#include "bench_util.hh"

#include "core/alias_analysis.hh"
#include "harness/table_printer.hh"
#include "harness/trace_cache.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace vpred;
    using harness::TablePrinter;
    bench::Banner banner("ablation_alias_geometry",
                         "aliasing mix vs level-2 size");

    harness::TraceCache cache;
    TablePrinter table({"predictor", "l2_bits", "hash_frac",
                        "l2_pc_frac", "none_frac", "accuracy"});

    for (const bool differential : {false, true}) {
        for (unsigned l2 : {8u, 10u, 12u, 14u, 16u}) {
            FcmConfig cfg;
            cfg.l1_bits = 12;
            cfg.l2_bits = l2;
            AliasBreakdown total;
            for (const std::string& name : workloads::benchmarkNames()) {
                AliasAnalyzer analyzer(cfg, differential);
                total += analyzer.run(cache.getSpan(name));
            }
            table.addRow(
                    {differential ? "dfcm" : "fcm",
                     TablePrinter::fmt(std::uint64_t{l2}),
                     TablePrinter::fmt(
                             total.fractionOfPredictions(AliasType::Hash),
                             3),
                     TablePrinter::fmt(
                             total.fractionOfPredictions(
                                     AliasType::L2Pc), 3),
                     TablePrinter::fmt(
                             total.fractionOfPredictions(AliasType::None),
                             3),
                     TablePrinter::fmt(total.total().accuracy())});
        }
    }

    table.print(std::cout);
    table.writeCsv("ablation_alias_geometry");
    return 0;
}
