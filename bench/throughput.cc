/**
 * @file
 * Engineering microbenchmarks (google-benchmark): predict+update
 * throughput of each predictor family. Not a paper figure — it
 * documents that trace-driven sweeps over billions of records are
 * feasible with this implementation.
 */

#include <benchmark/benchmark.h>

#include "core/predictor_factory.hh"
#include "tracegen/mixer.hh"

namespace
{

using namespace vpred;

const ValueTrace&
benchTrace()
{
    static const ValueTrace trace = tracegen::makeMixedTrace(
            {.stride_instructions = 24,
             .constant_instructions = 6,
             .context_instructions = 10,
             .random_instructions = 2,
             .seed = 20240607},
            1 << 16);
    return trace;
}

void
runPredictor(benchmark::State& state, PredictorKind kind)
{
    PredictorConfig cfg;
    cfg.kind = kind;
    cfg.l1_bits = 16;
    cfg.l2_bits = 12;
    auto predictor = makePredictor(cfg);
    const ValueTrace& trace = benchTrace();

    std::uint64_t correct = 0;
    for (auto _ : state) {
        for (const TraceRecord& rec : trace)
            correct += predictor->predictAndUpdate(rec.pc, rec.value);
        benchmark::DoNotOptimize(correct);
    }
    state.SetItemsProcessed(
            static_cast<std::int64_t>(state.iterations() * trace.size()));
}

void BM_Lvp(benchmark::State& s) { runPredictor(s, PredictorKind::Lvp); }
void BM_Stride(benchmark::State& s)
{
    runPredictor(s, PredictorKind::Stride);
}
void BM_TwoDelta(benchmark::State& s)
{
    runPredictor(s, PredictorKind::TwoDelta);
}
void BM_Fcm(benchmark::State& s) { runPredictor(s, PredictorKind::Fcm); }
void BM_Dfcm(benchmark::State& s)
{
    runPredictor(s, PredictorKind::Dfcm);
}
void BM_PerfectHybrid(benchmark::State& s)
{
    runPredictor(s, PredictorKind::PerfectStrideDfcm);
}

BENCHMARK(BM_Lvp);
BENCHMARK(BM_Stride);
BENCHMARK(BM_TwoDelta);
BENCHMARK(BM_Fcm);
BENCHMARK(BM_Dfcm);
BENCHMARK(BM_PerfectHybrid);

} // namespace

BENCHMARK_MAIN();
