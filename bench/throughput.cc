/**
 * @file
 * Engineering throughput benchmarks. Not a paper figure — this
 * documents that trace-driven sweeps over billions of records are
 * feasible, and records the perf trajectory across PRs.
 *
 * Running the binary with no arguments performs a deterministic
 * single-threaded comparison of the three execution paths —
 *
 *   virtual     per-record predict() + update() through the base
 *               class (the historical default predictAndUpdate),
 *   fused       the devirtualized runTraceKernel with the fused
 *               per-family predictAndUpdate overrides,
 *   multi-geom  MultiGeom{Fcm,Dfcm}Kernel evaluating the whole
 *               fig-10 l2_bits column in one trace walk
 *
 * — verifies the paths agree bit-for-bit, prints a table, and emits
 * results/BENCH_throughput.json (records/sec and speedups under
 * "metrics") through the shared results_json emitter. A fourth
 * measurement covers the stream-packed tier (feedTracePacked): a
 * round-robin multi-stream batch through the sequential feed, the
 * packed scalar schedule and the packed SIMD dispatch, with level-1
 * state and counter identity checked in-process.
 *
 * Passing any google-benchmark flag (e.g. --benchmark_filter=.*) or
 * setting REPRO_GBENCH=1 additionally runs the microbenchmark suite
 * for interactive profiling.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <tuple>
#include <utility>

#include "core/cpu_features.hh"
#include "core/dfcm_predictor.hh"
#include "core/fcm_predictor.hh"
#include "core/multi_geom.hh"
#include "core/predictor_factory.hh"
#include "core/stats.hh"
#include "core/table_arena.hh"
#include "harness/results_json.hh"
#include "tracegen/pattern.hh"
#include "harness/sweep.hh"
#include "harness/table_printer.hh"
#include "harness/trace_cache.hh"
#include "tracegen/mixer.hh"
#include "workloads/workload.hh"

namespace
{

using namespace vpred;

const ValueTrace&
benchTrace()
{
    static const ValueTrace trace = tracegen::makeMixedTrace(
            {.stride_instructions = 24,
             .constant_instructions = 6,
             .context_instructions = 10,
             .random_instructions = 2,
             .seed = 20240607},
            1 << 17);
    return trace;
}

PredictorConfig
columnConfig(PredictorKind kind, unsigned l2_bits)
{
    PredictorConfig cfg;
    cfg.kind = kind;
    cfg.l1_bits = 16;
    cfg.l2_bits = l2_bits;
    return cfg;
}

/**
 * The historical per-record path: two virtual calls through the
 * abstract interface. The concrete type is hidden behind the factory
 * (a separate translation unit), so the dispatch stays virtual.
 */
PredictorStats
runVirtualLoop(ValuePredictor& predictor, std::span<const TraceRecord> trace)
{
    PredictorStats stats;
    for (const TraceRecord& rec : trace) {
        stats.record(predictor.predict(rec.pc) == rec.value);
        predictor.update(rec.pc, rec.value);
    }
    return stats;
}

/** Best-of-N wall time of f() in seconds (f returns a checksum that
 *  is accumulated to keep the work observable). */
template <class F>
double
bestSeconds(int repeats, std::uint64_t& checksum, F&& f)
{
    double best = 1e300;
    for (int r = 0; r < repeats; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        checksum += f();
        const double s = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
        best = std::min(best, s);
    }
    return best;
}

/**
 * Compare the execution paths on one predictor family's fig-10
 * l2_bits column over a real workload trace, record metrics, tally
 * the work into @p exec, and abort loudly if any path disagrees.
 * The multi-geometry kernel is timed twice in the same process —
 * pinned to the scalar reference path and through the runtime SIMD
 * dispatch — so the SIMD speedup is measured head-to-head rather
 * than inferred across runs.
 */
void
compareColumn(PredictorKind kind, std::span<const TraceRecord> trace,
              harness::ResultsJsonWriter& json,
              harness::TablePrinter& table,
              harness::SweepExecution& exec)
{
    const std::vector<unsigned>& l2s = harness::paperL2Bits();
    const double cell_records = static_cast<double>(trace.size())
        * static_cast<double>(l2s.size());
    const std::string fam = kindName(kind);
    constexpr int kRepeats = 3;

    std::vector<PredictorStats> virt_stats, fused_stats;
    std::uint64_t sink = 0;

    const double virt_s = bestSeconds(kRepeats, sink, [&] {
        virt_stats.clear();
        for (unsigned l2 : l2s) {
            auto p = makePredictor(columnConfig(kind, l2));
            virt_stats.push_back(runVirtualLoop(*p, trace));
        }
        return virt_stats.back().correct;
    });
    exec.cells += l2s.size();
    exec.virtual_cells += l2s.size();
    exec.trace_walks += l2s.size() * kRepeats;

    const double fused_s = bestSeconds(kRepeats, sink, [&] {
        fused_stats.clear();
        for (unsigned l2 : l2s) {
            auto p = makePredictor(columnConfig(kind, l2));
            fused_stats.push_back(runTrace(*p, trace));
        }
        return fused_stats.back().correct;
    });
    exec.cells += l2s.size();
    exec.fused_cells += l2s.size();
    exec.trace_walks += l2s.size() * kRepeats;

    MultiGeomConfig geom;
    geom.l1_bits = 16;
    geom.l2_bits = l2s;
    const std::span<const TraceRecord> span{trace.data(), trace.size()};
    std::vector<PredictorStats> scalar_stats, multi_stats;
    const auto runBoth = [&](auto& kernel) {
        const double scalar = bestSeconds(kRepeats, sink, [&] {
            scalar_stats = kernel.runTrace(span, SimdBackend::Scalar);
            return scalar_stats.back().correct;
        });
        const double simd = bestSeconds(kRepeats, sink, [&] {
            multi_stats = kernel.runTrace(span);
            return multi_stats.back().correct;
        });
        return std::pair{scalar, simd};
    };
    double scalar_s = 0.0, multi_s = 0.0;
    if (kind == PredictorKind::Fcm) {
        MultiGeomFcmKernel kernel(geom);
        std::tie(scalar_s, multi_s) = runBoth(kernel);
    } else {
        MultiGeomDfcmKernel kernel(geom);
        std::tie(scalar_s, multi_s) = runBoth(kernel);
    }
    // One multi-geometry walk evaluates the whole column; the two
    // variants each re-evaluate every cell of it.
    exec.cells += 2 * l2s.size();
    exec.batched_cells += 2 * l2s.size();
    exec.trace_walks += 2 * kRepeats;
    benchmark::DoNotOptimize(sink);

    for (std::size_t c = 0; c < l2s.size(); ++c) {
        if (virt_stats[c] != fused_stats[c] ||
            virt_stats[c] != scalar_stats[c] ||
            virt_stats[c] != multi_stats[c]) {
            std::cerr << "FATAL: " << fam << " l2=" << l2s[c]
                      << ": execution paths disagree\n";
            std::exit(1);
        }
    }

    const double virt_rps = cell_records / virt_s;
    const double fused_rps = cell_records / fused_s;
    const double scalar_rps = cell_records / scalar_s;
    const double multi_rps = cell_records / multi_s;
    json.addMetric(fam + "_l2column_virtual_records_per_sec", virt_rps);
    json.addMetric(fam + "_l2column_fused_records_per_sec", fused_rps);
    json.addMetric(fam + "_l2column_multigeom_scalar_records_per_sec",
                   scalar_rps);
    json.addMetric(fam + "_l2column_multigeom_records_per_sec",
                   multi_rps);
    json.addMetric(fam + "_multigeom_speedup_vs_virtual",
                   virt_s / multi_s);
    json.addMetric(fam + "_multigeom_speedup_vs_fused", fused_s / multi_s);
    json.addMetric(fam + "_simd_speedup_vs_scalar", scalar_s / multi_s);

    using harness::TablePrinter;
    table.addRow({fam, TablePrinter::fmt(virt_rps / 1e6, 1),
                  TablePrinter::fmt(fused_rps / 1e6, 1),
                  TablePrinter::fmt(scalar_rps / 1e6, 1),
                  TablePrinter::fmt(multi_rps / 1e6, 1),
                  TablePrinter::fmt(scalar_s / multi_s, 2),
                  TablePrinter::fmt(virt_s / multi_s, 2)});
}

/**
 * The gather column tier head-to-head at the table sizes it was built
 * for: a column of eight 2^22-entry level-2 tables (16 MiB each,
 * 128 MiB of hot state per kernel). The A/B holds two kernels whose
 * legs interleave, so ~256 MiB of tables contend for the LLC and
 * each leg's walk evicts the other's — the uniform regime below
 * stays capacity-missing even when neighbor tenants on a shared host
 * leave the cache quiet (at 2^20 the same comparison flips with
 * ambient LLC pressure, and at 2^24 TLB walks serialize both legs
 * equally and compress the gap). Two trace regimes, because table
 * size alone does not decide the memory behaviour:
 *
 *  - "go": the paper workload. Its probe stream touches only a few
 *    tens of thousands of distinct slots per column, so even
 *    multi-megabyte tables stay LLC-resident and the per-record
 *    scalar probe loop — already at the load-fill-buffer MLP
 *    ceiling — keeps pace with (and can beat) the vpgatherdd batch.
 *    This row documents that honestly.
 *  - "uniform": 256 static instructions with uniformly random values,
 *    so the FS R-k stream spans far more of the table than any cache
 *    holds and every probe is a cache+TLB miss. Here the batch's
 *    longer prefetch lead (staged a whole 16-record batch ahead
 *    instead of one record) wins. The
 *    `dfcm_bigl2column_uniform_gather_speedup_vs_scalar_probe`
 *    metric is the committed >= 1.15x headline (DFCM is the paper's
 *    predictor; FCM's leaner scalar probe leaves the out-of-order
 *    window more slack, so its row gains ~0.1x less). The perf gate
 *    itself watches the per-leg *_records_per_sec metrics — ratios
 *    of two noisy rates are noisier than either and stay ungated.
 *
 * The baseline leg is the pre-arena world: gather tier off and the
 * kernel's tables pinned to ArenaMode::New (plain 64-byte-aligned
 * allocation, the std::vector equivalent). The gather leg runs the
 * gather tier with the tables under the active arena mode (mmap +
 * MADV_HUGEPAGE where the platform grants it). Both legs and the
 * scalar reference must agree bit-for-bit. Legs are interleaved
 * best-of-kRounds so host-steal noise hits both comparably.
 */
void
compareBigL2Column(PredictorKind kind, const std::string& regime,
                   std::span<const TraceRecord> trace,
                   harness::ResultsJsonWriter& json,
                   harness::TablePrinter& table,
                   harness::SweepExecution& exec)
{
    MultiGeomConfig geom;
    geom.l1_bits = 16;
    geom.l2_bits = {22, 22, 22, 22, 22, 22, 22, 22};
    const std::string fam = kindName(kind);
    const double cell_records = static_cast<double>(trace.size())
            * static_cast<double>(geom.l2_bits.size());
    // Best-of-5 interleaved rounds (the PR-8 best-of-N convention):
    // host-steal bursts on a shared runner dent single rounds by
    // 20%+, and the committed ratio should reflect the structural
    // gap, not which leg a burst happened to land on.
    constexpr int kRounds = 5;

    std::uint64_t sink = 0;
    std::vector<PredictorStats> probe_stats, gather_stats, ref_stats;
    const auto runBoth = [&](auto& probe_kernel, auto& gather_kernel) {
        probe_kernel.setGatherMinBits(0);
        probe_kernel.setArenaMode(ArenaMode::New);
        gather_kernel.setGatherMinBits(22);
        gather_kernel.setArenaMode(table_arena::activeMode());
        exec.gather_columns += gather_kernel.gatherColumnCount();
        ref_stats = probe_kernel.runTrace(trace, SimdBackend::Scalar);
        double probe = 0.0, gather = 0.0;
        for (int round = 0; round < kRounds; ++round) {
            const double p = bestSeconds(1, sink, [&] {
                probe_stats = probe_kernel.runTrace(trace);
                return probe_stats.back().correct;
            });
            const double g = bestSeconds(1, sink, [&] {
                gather_stats = gather_kernel.runTrace(trace);
                return gather_stats.back().correct;
            });
            probe = round == 0 ? p : std::min(probe, p);
            gather = round == 0 ? g : std::min(gather, g);
        }
        return std::pair{probe, gather};
    };
    double probe_s = 0.0, gather_s = 0.0;
    if (kind == PredictorKind::Fcm) {
        MultiGeomFcmKernel probe_kernel(geom), gather_kernel(geom);
        std::tie(probe_s, gather_s) = runBoth(probe_kernel, gather_kernel);
    } else {
        MultiGeomDfcmKernel probe_kernel(geom), gather_kernel(geom);
        std::tie(probe_s, gather_s) = runBoth(probe_kernel, gather_kernel);
    }
    exec.cells += 2 * geom.l2_bits.size();
    exec.batched_cells += 2 * geom.l2_bits.size();
    exec.trace_walks += 2 * kRounds + 1;
    benchmark::DoNotOptimize(sink);

    if (probe_stats != ref_stats || gather_stats != ref_stats) {
        std::cerr << "FATAL: " << fam << " big-l2 column (" << regime
                  << "): gather tier diverges from the scalar probe "
                     "path\n";
        std::exit(1);
    }

    const double probe_rps = cell_records / probe_s;
    const double gather_rps = cell_records / gather_s;
    const std::string stem = fam + "_bigl2column_" + regime;
    json.addMetric(stem + "_scalar_probe_records_per_sec", probe_rps);
    json.addMetric(stem + "_gather_records_per_sec", gather_rps);
    json.addMetric(stem + "_gather_speedup_vs_scalar_probe",
                   probe_s / gather_s);

    using harness::TablePrinter;
    table.addRow({fam, regime, TablePrinter::fmt(probe_rps / 1e6, 1),
                  TablePrinter::fmt(gather_rps / 1e6, 1),
                  TablePrinter::fmt(probe_s / gather_s, 2)});
}

/**
 * The stream-packed tier head-to-head: round-robin records from 2^12
 * independent streams (the service drain's steady state — every
 * 16-lane step fills from distinct streams) through the sequential
 * feed, the packed scalar schedule, and the packed SIMD dispatch.
 * Round-robin preserves each stream's record order globally, so the
 * sequential path must land on bit-identical level-1 state; the two
 * packed runs must agree on every counter (the canonical schedule is
 * backend-independent). Aborts loudly on any mismatch.
 */
void
comparePackedTier(harness::ResultsJsonWriter& json,
                  harness::SweepExecution& exec)
{
    MultiGeomConfig geom;
    geom.l1_bits = 12;
    geom.l2_bits = harness::paperL2Bits();

    const std::uint64_t streams = std::uint64_t{1} << geom.l1_bits;
    const std::uint64_t rounds = 96;
    ValueTrace batch;
    batch.reserve(streams * rounds);
    for (std::uint64_t r = 0; r < rounds; ++r)
        for (std::uint64_t s = 0; s < streams; ++s)
            batch.push_back({Pc{s},
                             (s * 0x9e3779b97f4a7c15ull
                              + r * ((s & 31) + 1))
                                     & 0xffffffffull});
    const std::span<const TraceRecord> span{batch.data(), batch.size()};

    constexpr int kRepeats = 3;
    std::uint64_t sink = 0;
    std::vector<PredictorStats> seq_stats, ps_stats, pv_stats;
    const double seq_s = bestSeconds(kRepeats, sink, [&] {
        MultiGeomDfcmKernel kernel(geom);
        seq_stats = kernel.feedTrace(span);
        return seq_stats.back().correct;
    });
    const double packed_scalar_s = bestSeconds(kRepeats, sink, [&] {
        MultiGeomDfcmKernel kernel(geom);
        ps_stats = kernel.feedTracePacked(span, SimdBackend::Scalar);
        return ps_stats.back().correct;
    });
    const double packed_s = bestSeconds(kRepeats, sink, [&] {
        MultiGeomDfcmKernel kernel(geom);
        pv_stats = kernel.feedTracePacked(span);
        return pv_stats.back().correct;
    });
    exec.trace_walks += 3 * kRepeats;
    benchmark::DoNotOptimize(sink);

    MultiGeomDfcmKernel seq_kernel(geom), packed_kernel(geom);
    seq_kernel.feedTrace(span, SimdBackend::Scalar);
    packed_kernel.feedTracePacked(span);
    for (std::uint64_t e = 0; e < streams; ++e) {
        if (!std::ranges::equal(seq_kernel.entryHists(e),
                                packed_kernel.entryHists(e))
            || seq_kernel.lastValue(e) != packed_kernel.lastValue(e)) {
            std::cerr << "FATAL: packed tier level-1 state diverges "
                         "from the sequential feed at entry "
                      << e << "\n";
            std::exit(1);
        }
    }
    for (std::size_t c = 0; c < ps_stats.size(); ++c) {
        if (ps_stats[c] != pv_stats[c]) {
            std::cerr << "FATAL: packed counters differ between "
                         "scalar schedule and SIMD dispatch\n";
            std::exit(1);
        }
    }

    // Cell-records (records x columns), matching the column table.
    const double n = static_cast<double>(batch.size())
            * static_cast<double>(geom.l2_bits.size());
    json.addMetric("dfcm_packed_sequential_records_per_sec",
                   n / seq_s);
    json.addMetric("dfcm_packed_scalar_records_per_sec",
                   n / packed_scalar_s);
    json.addMetric("dfcm_packed_simd_records_per_sec", n / packed_s);
    json.addMetric("dfcm_packed_simd_speedup_vs_sequential",
                   seq_s / packed_s);
    json.addMetric("dfcm_packed_simd_speedup_vs_packed_scalar",
                   packed_scalar_s / packed_s);
    std::cout << "\nstream-packed tier (dfcm, " << streams
              << " streams round-robin, whole l2 column, Mrps as "
                 "above):\n  sequential "
              << n / seq_s / 1e6 << ", packed-scalar "
              << n / packed_scalar_s / 1e6 << ", packed-simd "
              << n / packed_s / 1e6 << " (x"
              << packed_scalar_s / packed_s
              << " vs packed-scalar, x" << seq_s / packed_s
              << " vs sequential; state and counters verified)\n";
}

/** Single-config kernel-vs-virtual ratio for one family. */
void
compareFamily(PredictorKind kind, std::span<const TraceRecord> trace,
              harness::ResultsJsonWriter& json,
              harness::SweepExecution& exec)
{
    const PredictorConfig cfg = columnConfig(kind, 12);
    const std::string fam = kindName(kind);
    std::uint64_t sink = 0;
    PredictorStats virt, fused;

    const double virt_s = bestSeconds(3, sink, [&] {
        auto p = makePredictor(cfg);
        virt = runVirtualLoop(*p, trace);
        return virt.correct;
    });
    const double fused_s = bestSeconds(3, sink, [&] {
        auto p = makePredictor(cfg);
        fused = runTrace(*p, trace);
        return fused.correct;
    });
    exec.cells += 2;
    exec.virtual_cells += 1;
    exec.fused_cells += 1;
    exec.trace_walks += 6;
    benchmark::DoNotOptimize(sink);
    if (virt != fused) {
        std::cerr << "FATAL: " << fam
                  << ": fused path disagrees with virtual path\n";
        std::exit(1);
    }
    const double n = static_cast<double>(trace.size());
    json.addMetric(fam + "_virtual_records_per_sec", n / virt_s);
    json.addMetric(fam + "_fused_records_per_sec", n / fused_s);
    json.addMetric(fam + "_fused_speedup_vs_virtual", virt_s / fused_s);
}

// --- google-benchmark microbenchmarks (interactive profiling) ------

void
runPredictor(benchmark::State& state, PredictorKind kind)
{
    PredictorConfig cfg;
    cfg.kind = kind;
    cfg.l1_bits = 16;
    cfg.l2_bits = 12;
    auto predictor = makePredictor(cfg);
    const ValueTrace& trace = benchTrace();

    std::uint64_t correct = 0;
    for (auto _ : state) {
        correct += runTrace(*predictor, trace).correct;
        benchmark::DoNotOptimize(correct);
    }
    state.SetItemsProcessed(
            static_cast<std::int64_t>(state.iterations() * trace.size()));
}

void BM_Lvp(benchmark::State& s) { runPredictor(s, PredictorKind::Lvp); }
void BM_Stride(benchmark::State& s)
{
    runPredictor(s, PredictorKind::Stride);
}
void BM_TwoDelta(benchmark::State& s)
{
    runPredictor(s, PredictorKind::TwoDelta);
}
void BM_Fcm(benchmark::State& s) { runPredictor(s, PredictorKind::Fcm); }
void BM_Dfcm(benchmark::State& s)
{
    runPredictor(s, PredictorKind::Dfcm);
}
void BM_PerfectHybrid(benchmark::State& s)
{
    runPredictor(s, PredictorKind::PerfectStrideDfcm);
}

void
BM_DfcmVirtualLoop(benchmark::State& state)
{
    auto predictor = makePredictor(columnConfig(PredictorKind::Dfcm, 12));
    const ValueTrace& trace = benchTrace();
    std::uint64_t correct = 0;
    for (auto _ : state) {
        correct += runVirtualLoop(*predictor, trace).correct;
        benchmark::DoNotOptimize(correct);
    }
    state.SetItemsProcessed(
            static_cast<std::int64_t>(state.iterations() * trace.size()));
}

void
BM_DfcmMultiGeomColumn(benchmark::State& state)
{
    MultiGeomConfig geom;
    geom.l1_bits = 16;
    geom.l2_bits = harness::paperL2Bits();
    MultiGeomDfcmKernel kernel(geom);
    const ValueTrace& trace = benchTrace();
    std::uint64_t correct = 0;
    for (auto _ : state) {
        correct += kernel.runTrace({trace.data(), trace.size()})
                           .back()
                           .correct;
        benchmark::DoNotOptimize(correct);
    }
    // One iteration evaluates the whole column: count cell-records.
    state.SetItemsProcessed(static_cast<std::int64_t>(
            state.iterations() * trace.size() * geom.l2_bits.size()));
}

BENCHMARK(BM_Lvp);
BENCHMARK(BM_Stride);
BENCHMARK(BM_TwoDelta);
BENCHMARK(BM_Fcm);
BENCHMARK(BM_Dfcm);
BENCHMARK(BM_PerfectHybrid);
BENCHMARK(BM_DfcmVirtualLoop);
BENCHMARK(BM_DfcmMultiGeomColumn);

} // namespace

int
main(int argc, char** argv)
{
    using harness::TablePrinter;

    // A real workload trace: the comparison should see the sweeps'
    // actual locality, not the synthetic mixer's 42-instruction one.
    const std::string workload = "go";
    harness::TraceCache cache;

    // Acquire the full benchmark suite once, timed: with a warm
    // REPRO_TRACE_DIR store every trace arrives by mmap; cold runs
    // generate through the VM (and persist for next time). The split
    // between the two paths lands in the BENCH JSON so cold-generate
    // vs warm-mmap acquisition can be compared across runs.
    const auto acq_start = std::chrono::steady_clock::now();
    cache.prewarm(vpred::workloads::benchmarkNames());
    const double acq_wall =
            std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - acq_start)
                    .count();
    const harness::TraceCache::AcquisitionStats acq = cache.acquisition();
    const char* acq_path = !acq.store_enabled
            ? "vm-generate (no store)"
            : acq.generated == 0 ? "warm-mmap"
                                 : "cold-generate+persist";
    const std::span<const TraceRecord> trace = cache.getSpan(workload);

    const SimdBackend backend = activeSimdBackend();
    std::cout << "=== throughput: execution-path comparison ===\n"
              << "trace: " << workload << ", " << trace.size()
              << " records, fig-10 l2 column = "
              << harness::paperL2Bits().size()
              << " geometries, single-threaded, simd dispatch = "
              << simdBackendName(backend) << " ("
              << simdVectorBits(backend) << "-bit)\n"
              << "trace acquisition (" << acq_path << "): "
              << acq_wall * 1000.0 << " ms for the full suite ("
              << acq.store_hits << " store hits, " << acq.generated
              << " generated)\n\n";

    harness::ResultsJsonWriter json("throughput", cache.scale(),
                                    /*jobs=*/1);
    // The comparison functions tally cells and trace walks into this
    // as they run; the acquisition and SIMD fields are filled here.
    harness::SweepExecution exec;
    exec.jobs = 1;
    exec.store_enabled = acq.store_enabled;
    exec.store_hits = acq.store_hits;
    exec.store_misses = acq.store_misses;
    exec.acquisition_seconds = acq.seconds();
    exec.simd_backend = simdBackendName(backend);
    exec.vector_width = simdVectorBits(backend);
    json.addMetric("trace_records",
                   static_cast<double>(trace.size()));
    json.addMetric("trace_acquisition_wall_ms", acq_wall * 1000.0);
    json.addMetric("trace_generate_ms", acq.generate_seconds * 1000.0);
    json.addMetric("trace_mmap_load_ms", acq.load_seconds * 1000.0);
    json.addMetric("trace_store_hit_count",
                   static_cast<double>(acq.store_hits));
    json.addMetric("trace_generated_count",
                   static_cast<double>(acq.generated));

    const auto bench_start = std::chrono::steady_clock::now();

    {
        MultiGeomConfig probe_geom;
        probe_geom.l2_bits = harness::paperL2Bits();
        MultiGeomFcmKernel probe(probe_geom);
        exec.gather_min_bits = probe.gatherMinBits();
    }
    // The miss-bound regime for the gather tier: 256 static
    // instructions of uniformly random values, so the hashed probe
    // stream spreads across the 2^22-entry tables and the A/B pair's
    // combined ~256 MiB of tables thrash any LLC (the paper traces
    // touch only a few tens of thousands of distinct slots per column
    // and stay LLC-resident no matter how big the table is).
    // Deliberately NOT scaled by
    // REPRO_TRACE_SCALE: the gather/probe ratio depends on how much
    // of the table the trace touches, so a shorter trace would change
    // the regime being measured — the perf gate must compare the same
    // physics as the committed baseline, and the fixed-length legs
    // cost only a few seconds.
    //
    // This family runs FIRST, before any other comparison has churned
    // the address space: the A/B's 128 MiB kernels are sensitive to
    // allocator and VMA aging (a few percent on the probe/gather
    // legs), and first place keeps the measurement conditions closest
    // to a standalone reproduction of the same shape.
    const std::size_t uniform_records = 2000000;
    tracegen::TraceMixer uniform_mixer(7);
    for (unsigned pc = 0; pc < 256; ++pc)
        uniform_mixer.add(0x1000 + pc * 64,
                          std::make_unique<tracegen::RandomPattern>(
                                  0xABCD + pc));
    const ValueTrace uniform_trace =
            uniform_mixer.generate(uniform_records);
    // The go rows are pinned to the full-scale trace for the same
    // reason: a scaled run is a different program execution (not a
    // prefix of the full one), and how often its probe stream
    // revisits a 2^22-entry slot — the whole point of the go rows —
    // changes with the run length. A second cache at scale 1.0
    // shares the persistent store (entries are keyed on the exact
    // scale) and costs one extra go generation on storeless runs.
    harness::TraceCache big_go_cache(1.0);
    const std::span<const TraceRecord> big_go_trace =
            big_go_cache.getSpan(workload);

    std::cout << "=== gather column tier: 8 x 2^22-entry tables "
                 "(128 MiB hot state per kernel) ===\n";
    TablePrinter big_table({"family", "regime", "scalar_probe_Mrps",
                            "gather_Mrps", "gather/probe"});
    compareBigL2Column(PredictorKind::Dfcm, "uniform", uniform_trace,
                       json, big_table, exec);
    compareBigL2Column(PredictorKind::Fcm, "uniform", uniform_trace,
                       json, big_table, exec);
    compareBigL2Column(PredictorKind::Fcm, "go", big_go_trace, json,
                       big_table, exec);
    compareBigL2Column(PredictorKind::Dfcm, "go", big_go_trace, json,
                       big_table, exec);
    big_table.print(std::cout);
    std::cout << "(probe leg: gather off, tables pinned to plain "
                 "allocation; gather leg: gather on, tables under the "
                 "arena; all legs verified against the scalar "
                 "reference.\n go = paper trace, LLC-resident probe "
                 "stream; uniform = random values, every probe a "
                 "cache+TLB miss — the regime the tier is for)\n";

    TablePrinter table({"family", "virtual_Mrps", "fused_Mrps",
                        "mg_scalar_Mrps", "mg_simd_Mrps",
                        "simd/scalar", "simd/virt"});
    std::cout << "\n";
    compareColumn(PredictorKind::Fcm, trace, json, table, exec);
    compareColumn(PredictorKind::Dfcm, trace, json, table, exec);
    table.print(std::cout);
    std::cout << "(Mrps = million cell-records per second over the "
                 "whole l2 column; all paths verified bit-identical)\n";

    comparePackedTier(json, exec);

    for (PredictorKind kind :
         {PredictorKind::Lvp, PredictorKind::Stride,
          PredictorKind::TwoDelta, PredictorKind::Fcm,
          PredictorKind::Dfcm})
        compareFamily(kind, trace, json, exec);

    exec.wall_seconds =
            std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - bench_start)
                    .count();
    json.setExecution(exec);
    if (json.write())
        std::cout << "\nwrote results/BENCH_throughput.json\n";

    const char* gbench = std::getenv("REPRO_GBENCH");
    if (argc > 1 || (gbench != nullptr && *gbench == '1')) {
        benchmark::Initialize(&argc, argv);
        benchmark::RunSpecifiedBenchmarks();
        benchmark::Shutdown();
    } else {
        std::cout << "(pass --benchmark_filter=.* or set REPRO_GBENCH=1 "
                     "for the google-benchmark suite)\n";
    }
    return 0;
}
