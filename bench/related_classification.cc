/**
 * @file
 * Related-work comparison (Section 5 of the paper, made executable):
 * dynamic classification with per-class predictors (Rychlik et al.;
 * Lee et al.) vs. the DFCM's dynamic table sharing.
 *
 * Paper quotes to check: Rychlik's classifier marks "more than 50%
 * of the instructions as unpredictable", Lee reports 24%; Rychlik's
 * overall prediction accuracy is 43%, far below the (D)FCM. The
 * paper argues the fixed partitioning and hard assignment are the
 * culprits — so the bench also reports the class census and the
 * storage-matched DFCM accuracy.
 */

#include "bench_util.hh"

#include "core/classifying_predictor.hh"
#include "core/dfcm_predictor.hh"
#include "core/stats.hh"
#include "harness/table_printer.hh"
#include "harness/trace_cache.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace vpred;
    using harness::TablePrinter;
    bench::Banner banner("related_classification",
                         "dynamic classification vs DFCM (Section 5)");

    harness::TraceCache cache;

    ClassifyingConfig ccfg;  // defaults: 14/14/14/12 tables
    TablePrinter table({"benchmark", "classify_acc", "dfcm_acc",
                        "unpredictable_frac", "stride_frac",
                        "context_frac"});

    PredictorStats ctotal, dtotal;
    for (const std::string& name : workloads::benchmarkNames()) {
        ClassifyingPredictor classifier(ccfg);
        const PredictorStats cs =
                runTrace(classifier, cache.getSpan(name));
        // Storage-matched DFCM (2^14 level-1 / 2^12 level-2 is
        // slightly *smaller* than the classifier's four tables).
        DfcmPredictor dfcm({.l1_bits = 14, .l2_bits = 12});
        const PredictorStats ds = runTrace(dfcm, cache.getSpan(name));
        ctotal += cs;
        dtotal += ds;

        const auto census = classifier.classCensus();
        double assigned = 0;
        for (unsigned c = 1; c < census.size(); ++c)
            assigned += static_cast<double>(census[c]);
        auto frac = [&](ValueClass cls) {
            return assigned == 0
                ? 0.0
                : static_cast<double>(census[static_cast<unsigned>(cls)])
                        / assigned;
        };
        table.addRow({name, TablePrinter::fmt(cs.accuracy()),
                      TablePrinter::fmt(ds.accuracy()),
                      TablePrinter::fmt(
                              frac(ValueClass::Unpredictable), 3),
                      TablePrinter::fmt(frac(ValueClass::Stride), 3),
                      TablePrinter::fmt(frac(ValueClass::Context), 3)});
    }
    table.addRow({"average", TablePrinter::fmt(ctotal.accuracy()),
                  TablePrinter::fmt(dtotal.accuracy()), "-", "-", "-"});

    table.print(std::cout);
    table.writeCsv("related_classification");
    std::cout << "\nPaper context: Rychlik's classifier achieves 43% "
              << "overall accuracy and marks >50% of instructions\n"
              << "unpredictable; the DFCM shares one table dynamically "
              << "and needs no classifier at all.\n";
    return 0;
}
