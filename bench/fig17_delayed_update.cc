/**
 * @file
 * Figure 17 reproduction: prediction accuracy under delayed update,
 * d in {0, 16, 32, 64, 128, 256, 512}, FCM vs DFCM at 2^16-entry
 * level-1 and 2^12-entry level-2 tables.
 *
 * Paper shape: both predictors suffer significantly, the DFCM
 * slightly more, but the overall behavior is the same.
 *
 * The 14-cell (delay × predictor) grid runs through the parallel
 * sweep executor and lands in results/BENCH_fig17_delayed_update.json.
 */

#include "bench_util.hh"

#include "harness/experiment.hh"
#include "harness/parallel_sweep.hh"
#include "harness/results_json.hh"
#include "harness/sweep.hh"
#include "harness/table_printer.hh"

int
main()
{
    using namespace vpred;
    using harness::TablePrinter;
    bench::Banner banner("fig17", "accuracy under delayed update");

    harness::TraceCache cache;
    harness::ParallelSweep sweep(cache);
    harness::ResultsJsonWriter json("fig17_delayed_update", cache.scale(),
                                    sweep.jobs());

    std::vector<PredictorConfig> configs;
    for (unsigned delay : harness::paperUpdateDelays()) {
        PredictorConfig cfg;
        cfg.l1_bits = 16;
        cfg.l2_bits = 12;
        cfg.update_delay = delay;
        cfg.kind = PredictorKind::Fcm;
        configs.push_back(cfg);
        cfg.kind = PredictorKind::Dfcm;
        configs.push_back(cfg);
    }
    const std::vector<harness::SuiteResult> results =
            sweep.runGrid(configs);
    json.addGrid(configs, results);
    json.setExecution(sweep.lastExecution());
    bench::reportExecution(sweep.lastExecution());

    TablePrinter table({"delay", "fcm", "dfcm", "fcm_drop",
                        "dfcm_drop"});
    double fcm0 = 0, dfcm0 = 0;
    for (std::size_t i = 0; i < configs.size(); i += 2) {
        const unsigned delay = configs[i].update_delay;
        const double fcm = results[i].accuracy();
        const double dfcm = results[i + 1].accuracy();
        if (delay == 0) {
            fcm0 = fcm;
            dfcm0 = dfcm;
        }
        table.addRow({TablePrinter::fmt(std::uint64_t{delay}),
                      TablePrinter::fmt(fcm), TablePrinter::fmt(dfcm),
                      TablePrinter::fmt(fcm0 - fcm, 3),
                      TablePrinter::fmt(dfcm0 - dfcm, 3)});
    }

    table.print(std::cout);
    table.writeCsv("fig17_delayed_update");
    json.write();
    return 0;
}
