/**
 * @file
 * Ablation: spending the paper's level-2 bits on associativity and
 * partial tags instead of more direct-mapped entries. Section 4.2
 * attributes most remaining DFCM mispredictions to hash aliasing;
 * a tagged set-associative level-2 detects those conflicts and
 * falls back to a last-value prediction instead of consuming a
 * colliding stride.
 *
 * Rows compare (direct-mapped, untagged) DFCM against 2/4-way
 * tagged organizations at similar storage.
 */

#include "bench_util.hh"

#include "core/assoc_dfcm_predictor.hh"
#include "core/dfcm_predictor.hh"
#include "core/stats.hh"
#include "harness/table_printer.hh"
#include "harness/trace_cache.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace vpred;
    using harness::TablePrinter;
    bench::Banner banner("ablation_assoc",
                         "tagged set-associative level-2 for the DFCM");

    harness::TraceCache cache;
    TablePrinter table({"organization", "size_kbit", "accuracy",
                        "tag_hit_rate"});

    // Baseline: the paper's direct-mapped untagged DFCM.
    for (unsigned l2 : {10u, 12u}) {
        DfcmConfig cfg;
        cfg.l1_bits = 16;
        cfg.l2_bits = l2;
        PredictorStats total;
        double kbit = 0;
        for (const std::string& name : workloads::benchmarkNames()) {
            DfcmPredictor p(cfg);
            total += runTrace(p, cache.getSpan(name));
            kbit = p.storageKbit();
        }
        table.addRow({"direct 2^" + std::to_string(l2),
                      TablePrinter::fmt(kbit, 1),
                      TablePrinter::fmt(total.accuracy()), "-"});
    }

    // Tagged associative organizations.
    const AssocDfcmConfig configs[] = {
        {.l1_bits = 16, .set_bits = 9, .ways = 2, .tag_bits = 6},
        {.l1_bits = 16, .set_bits = 8, .ways = 4, .tag_bits = 6},
        {.l1_bits = 16, .set_bits = 11, .ways = 2, .tag_bits = 6},
        {.l1_bits = 16, .set_bits = 10, .ways = 4, .tag_bits = 6},
    };
    for (const AssocDfcmConfig& cfg : configs) {
        PredictorStats total;
        double kbit = 0, hit = 0;
        for (const std::string& name : workloads::benchmarkNames()) {
            AssocDfcmPredictor p(cfg);
            total += runTrace(p, cache.getSpan(name));
            kbit = p.storageKbit();
            hit += p.hitRate();
        }
        table.addRow({AssocDfcmPredictor(cfg).name(),
                      TablePrinter::fmt(kbit, 1),
                      TablePrinter::fmt(total.accuracy()),
                      TablePrinter::fmt(hit / 8.0, 3)});
    }

    table.print(std::cout);
    table.writeCsv("ablation_assoc");
    return 0;
}
