/**
 * @file
 * Figure 10 reproduction: FCM vs DFCM prediction accuracy.
 *
 * (a) suite-weighted accuracy with a 2^16-entry level-1 table and
 *     level-2 sizes 2^8..2^20. Paper: DFCM ahead everywhere, +33%
 *     at small tables, +8% (.74 -> .79) at the largest.
 * (b) per-benchmark accuracy at level-2 = 2^12. Paper: average +19%
 *     (.62 -> .73), per-benchmark gains 8%..46%.
 *
 * The whole (config × workload) grid runs through the parallel sweep
 * executor (REPRO_JOBS workers); part (b) reuses the l2 = 2^12 cells
 * of the same grid, and all suites land in results/BENCH_*.json.
 */

#include "bench_util.hh"

#include "harness/experiment.hh"
#include "harness/parallel_sweep.hh"
#include "harness/results_json.hh"
#include "harness/sweep.hh"
#include "harness/table_printer.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace vpred;
    using harness::TablePrinter;
    bench::Banner banner("fig10", "FCM vs DFCM accuracy");

    harness::TraceCache cache;
    harness::ParallelSweep sweep(cache);
    harness::ResultsJsonWriter json("fig10_fcm_vs_dfcm", cache.scale(),
                                    sweep.jobs());

    // One grid covers both parts: (fcm, dfcm) per level-2 size.
    std::vector<PredictorConfig> configs;
    for (unsigned l2 : harness::paperL2Bits()) {
        PredictorConfig cfg;
        cfg.l1_bits = 16;
        cfg.l2_bits = l2;
        cfg.kind = PredictorKind::Fcm;
        configs.push_back(cfg);
        cfg.kind = PredictorKind::Dfcm;
        configs.push_back(cfg);
    }
    const std::vector<harness::SuiteResult> results =
            sweep.runGrid(configs);
    json.addGrid(configs, results);
    json.setExecution(sweep.lastExecution());
    bench::reportExecution(sweep.lastExecution());

    // --- (a): level-2 sweep at l1 = 2^16
    TablePrinter ta({"l2_bits", "fcm", "dfcm", "dfcm/fcm"});
    const harness::SuiteResult* fcm12 = nullptr;
    const harness::SuiteResult* dfcm12 = nullptr;
    for (std::size_t i = 0; i < configs.size(); i += 2) {
        const double fcm = results[i].accuracy();
        const double dfcm = results[i + 1].accuracy();
        ta.addRow({TablePrinter::fmt(std::uint64_t{configs[i].l2_bits}),
                   TablePrinter::fmt(fcm), TablePrinter::fmt(dfcm),
                   TablePrinter::fmt(dfcm / fcm, 3)});
        if (configs[i].l2_bits == 12) {
            fcm12 = &results[i];
            dfcm12 = &results[i + 1];
        }
    }
    std::cout << "(a) suite accuracy, l1 = 2^16\n";
    ta.print(std::cout);
    ta.writeCsv("fig10a_l2_sweep");

    // --- (b): per benchmark at l2 = 2^12 (cells shared with (a))
    TablePrinter tb({"benchmark", "fcm", "dfcm", "dfcm/fcm"});
    for (std::size_t w = 0; w < workloads::benchmarkNames().size(); ++w) {
        const harness::RunResult& rf = fcm12->per_workload[w];
        const harness::RunResult& rd = dfcm12->per_workload[w];
        tb.addRow({rf.workload, TablePrinter::fmt(rf.accuracy()),
                   TablePrinter::fmt(rd.accuracy()),
                   TablePrinter::fmt(rd.accuracy() / rf.accuracy(), 3)});
    }
    tb.addRow({"average", TablePrinter::fmt(fcm12->accuracy()),
               TablePrinter::fmt(dfcm12->accuracy()),
               TablePrinter::fmt(dfcm12->accuracy() / fcm12->accuracy(),
                                 3)});
    std::cout << "\n(b) per-benchmark accuracy, l1 = 2^16, l2 = 2^12\n";
    tb.print(std::cout);
    tb.writeCsv("fig10b_per_benchmark");

    json.write();
    return 0;
}
