/**
 * @file
 * Figure 10 reproduction: FCM vs DFCM prediction accuracy.
 *
 * (a) suite-weighted accuracy with a 2^16-entry level-1 table and
 *     level-2 sizes 2^8..2^20. Paper: DFCM ahead everywhere, +33%
 *     at small tables, +8% (.74 -> .79) at the largest.
 * (b) per-benchmark accuracy at level-2 = 2^12. Paper: average +19%
 *     (.62 -> .73), per-benchmark gains 8%..46%.
 */

#include "bench_util.hh"

#include "harness/experiment.hh"
#include "harness/sweep.hh"
#include "harness/table_printer.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace vpred;
    using harness::TablePrinter;
    bench::Banner banner("fig10", "FCM vs DFCM accuracy");

    harness::TraceCache cache;

    // --- (a): level-2 sweep at l1 = 2^16
    TablePrinter ta({"l2_bits", "fcm", "dfcm", "dfcm/fcm"});
    for (unsigned l2 : harness::paperL2Bits()) {
        PredictorConfig cfg;
        cfg.l1_bits = 16;
        cfg.l2_bits = l2;
        cfg.kind = PredictorKind::Fcm;
        const double fcm = runBenchmarks(cache, cfg).accuracy();
        cfg.kind = PredictorKind::Dfcm;
        const double dfcm = runBenchmarks(cache, cfg).accuracy();
        ta.addRow({TablePrinter::fmt(std::uint64_t{l2}),
                   TablePrinter::fmt(fcm), TablePrinter::fmt(dfcm),
                   TablePrinter::fmt(dfcm / fcm, 3)});
    }
    std::cout << "(a) suite accuracy, l1 = 2^16\n";
    ta.print(std::cout);
    ta.writeCsv("fig10a_l2_sweep");

    // --- (b): per benchmark at l2 = 2^12
    TablePrinter tb({"benchmark", "fcm", "dfcm", "dfcm/fcm"});
    PredictorStats fcm_total, dfcm_total;
    for (const std::string& name : workloads::benchmarkNames()) {
        PredictorConfig cfg;
        cfg.l1_bits = 16;
        cfg.l2_bits = 12;
        cfg.kind = PredictorKind::Fcm;
        const auto rf = runOn(cache, name, cfg);
        cfg.kind = PredictorKind::Dfcm;
        const auto rd = runOn(cache, name, cfg);
        fcm_total += rf.stats;
        dfcm_total += rd.stats;
        tb.addRow({name, TablePrinter::fmt(rf.accuracy()),
                   TablePrinter::fmt(rd.accuracy()),
                   TablePrinter::fmt(rd.accuracy() / rf.accuracy(), 3)});
    }
    tb.addRow({"average", TablePrinter::fmt(fcm_total.accuracy()),
               TablePrinter::fmt(dfcm_total.accuracy()),
               TablePrinter::fmt(
                       dfcm_total.accuracy() / fcm_total.accuracy(), 3)});
    std::cout << "\n(b) per-benchmark accuracy, l1 = 2^16, l2 = 2^12\n";
    tb.print(std::cout);
    tb.writeCsv("fig10b_per_benchmark");
    return 0;
}
