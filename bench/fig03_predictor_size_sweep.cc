/**
 * @file
 * Figure 3 reproduction: accuracy vs. predictor size (Kbit) for the
 * last value predictor, the stride predictor and the FCM.
 *
 * Paper series: LVP and stride with 2^6..2^16 entries; FCM curves
 * for level-1 sizes 2^0, 2^4, 2^6, ..., 2^16, each swept over
 * level-2 sizes 2^8..2^20. Expected shape: FCM dominates both simple
 * predictors at all but the smallest sizes, while needing huge
 * level-2 tables to keep improving.
 *
 * All 68 configurations run through the parallel sweep executor and
 * are mirrored into results/BENCH_fig03_predictor_size_sweep.json.
 */

#include "bench_util.hh"

#include "harness/experiment.hh"
#include "harness/parallel_sweep.hh"
#include "harness/results_json.hh"
#include "harness/sweep.hh"
#include "harness/table_printer.hh"

int
main()
{
    using namespace vpred;
    using harness::TablePrinter;
    bench::Banner banner("fig03",
                         "LVP / stride / FCM accuracy vs. size");

    harness::TraceCache cache;
    harness::ParallelSweep sweep(cache);
    harness::ResultsJsonWriter json("fig03_predictor_size_sweep",
                                    cache.scale(), sweep.jobs());

    // Assemble every series cell first, then fan the grid out.
    std::vector<std::string> series;
    std::vector<PredictorConfig> configs;
    auto plan = [&](const std::string& label, const PredictorConfig& cfg) {
        series.push_back(label);
        configs.push_back(cfg);
    };

    for (unsigned bits : harness::paperSingleTableBits()) {
        PredictorConfig cfg;
        cfg.kind = PredictorKind::Lvp;
        cfg.l1_bits = bits;
        plan("lvp", cfg);
    }
    for (unsigned bits : harness::paperSingleTableBits()) {
        PredictorConfig cfg;
        cfg.kind = PredictorKind::Stride;
        cfg.l1_bits = bits;
        plan("stride", cfg);
    }
    for (unsigned l1 : harness::paperFcmL1Bits()) {
        for (unsigned l2 : harness::paperL2Bits()) {
            PredictorConfig cfg;
            cfg.kind = PredictorKind::Fcm;
            cfg.l1_bits = l1;
            cfg.l2_bits = l2;
            plan("fcm_L1=2^" + std::to_string(l1), cfg);
        }
    }

    const std::vector<harness::SuiteResult> results =
            sweep.runGrid(configs);
    json.addGrid(configs, results);
    json.setExecution(sweep.lastExecution());
    bench::reportExecution(sweep.lastExecution());

    TablePrinter table({"series", "l1_bits", "l2_bits", "size_kbit",
                        "accuracy"});
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const PredictorConfig& cfg = configs[i];
        const harness::SuiteResult& r = results[i];
        table.addRow({series[i],
                      TablePrinter::fmt(std::uint64_t{cfg.l1_bits}),
                      cfg.kind == PredictorKind::Fcm
                              ? TablePrinter::fmt(
                                        std::uint64_t{cfg.l2_bits})
                              : "-",
                      TablePrinter::fmt(r.storageKbit(), 1),
                      TablePrinter::fmt(r.accuracy())});
    }

    table.print(std::cout);
    table.writeCsv("fig03_predictor_size_sweep");
    json.write();
    return 0;
}
