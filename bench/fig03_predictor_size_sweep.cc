/**
 * @file
 * Figure 3 reproduction: accuracy vs. predictor size (Kbit) for the
 * last value predictor, the stride predictor and the FCM.
 *
 * Paper series: LVP and stride with 2^6..2^16 entries; FCM curves
 * for level-1 sizes 2^0, 2^4, 2^6, ..., 2^16, each swept over
 * level-2 sizes 2^8..2^20. Expected shape: FCM dominates both simple
 * predictors at all but the smallest sizes, while needing huge
 * level-2 tables to keep improving.
 */

#include "bench_util.hh"

#include "harness/experiment.hh"
#include "harness/sweep.hh"
#include "harness/table_printer.hh"

int
main()
{
    using namespace vpred;
    using harness::TablePrinter;
    bench::Banner banner("fig03",
                         "LVP / stride / FCM accuracy vs. size");

    harness::TraceCache cache;
    TablePrinter table({"series", "l1_bits", "l2_bits", "size_kbit",
                        "accuracy"});

    auto emit = [&](const std::string& series,
                    const PredictorConfig& cfg) {
        const harness::SuiteResult r = runBenchmarks(cache, cfg);
        table.addRow({series, TablePrinter::fmt(std::uint64_t{cfg.l1_bits}),
                      cfg.kind == PredictorKind::Fcm
                              ? TablePrinter::fmt(
                                        std::uint64_t{cfg.l2_bits})
                              : "-",
                      TablePrinter::fmt(r.storageKbit(), 1),
                      TablePrinter::fmt(r.accuracy())});
    };

    for (unsigned bits : harness::paperSingleTableBits()) {
        PredictorConfig cfg;
        cfg.kind = PredictorKind::Lvp;
        cfg.l1_bits = bits;
        emit("lvp", cfg);
    }
    for (unsigned bits : harness::paperSingleTableBits()) {
        PredictorConfig cfg;
        cfg.kind = PredictorKind::Stride;
        cfg.l1_bits = bits;
        emit("stride", cfg);
    }
    for (unsigned l1 : harness::paperFcmL1Bits()) {
        for (unsigned l2 : harness::paperL2Bits()) {
            PredictorConfig cfg;
            cfg.kind = PredictorKind::Fcm;
            cfg.l1_bits = l1;
            cfg.l2_bits = l2;
            emit("fcm_L1=2^" + std::to_string(l1), cfg);
        }
    }

    table.print(std::cout);
    table.writeCsv("fig03_predictor_size_sweep");
    return 0;
}
