/**
 * @file
 * Robustness check (beyond the paper's figures): does the DFCM's
 * advantage hold on workloads the suite was *not* tuned for? Runs
 * the full predictor family comparison on the extra kernels (gzip:
 * LZ77 matching; mcf: network arc pricing) at the Figure 10(b)
 * geometry.
 */

#include "bench_util.hh"

#include "core/predictor_factory.hh"
#include "core/stats.hh"
#include "harness/table_printer.hh"
#include "harness/trace_cache.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace vpred;
    using harness::TablePrinter;
    bench::Banner banner("extra_workloads",
                         "predictor family on out-of-suite kernels");

    harness::TraceCache cache;
    TablePrinter table({"workload", "lvp", "stride", "fcm", "dfcm",
                        "dfcm/fcm"});

    for (const std::string& name : {std::string("gzip"),
                                    std::string("mcf")}) {
        auto acc = [&](PredictorKind kind) {
            PredictorConfig cfg;
            cfg.kind = kind;
            cfg.l1_bits = 16;
            cfg.l2_bits = 12;
            auto p = makePredictor(cfg);
            return runTrace(*p, cache.getSpan(name)).accuracy();
        };
        const double fcm = acc(PredictorKind::Fcm);
        const double dfcm = acc(PredictorKind::Dfcm);
        table.addRow({name, TablePrinter::fmt(acc(PredictorKind::Lvp)),
                      TablePrinter::fmt(acc(PredictorKind::Stride)),
                      TablePrinter::fmt(fcm), TablePrinter::fmt(dfcm),
                      TablePrinter::fmt(dfcm / fcm, 3)});
    }

    table.print(std::cout);
    table.writeCsv("extra_workloads");
    return 0;
}
