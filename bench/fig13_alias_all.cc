/**
 * @file
 * Figure 13 reproduction: aliasing-type fractions over *all*
 * predictions, per benchmark plus the weighted average, for the FCM
 * and the DFCM (2^12-entry level-1 and level-2).
 *
 * Paper shape: hash and l2_pc are the most common types; "no
 * aliasing at all is rather seldom"; the DFCM shows *more* l2_pc
 * (almost twice) and less hash aliasing, with even fewer "none"
 * cases.
 */

#include "bench_util.hh"

#include "core/alias_analysis.hh"
#include "harness/table_printer.hh"
#include "harness/trace_cache.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace vpred;
    using harness::TablePrinter;
    bench::Banner banner("fig13",
                         "aliasing-type fractions, all predictions");

    harness::TraceCache cache;
    FcmConfig cfg;
    cfg.l1_bits = 12;
    cfg.l2_bits = 12;

    TablePrinter table({"predictor", "benchmark", "l1", "hash",
                        "l2_priv", "l2_pc", "none"});

    for (const bool differential : {false, true}) {
        const char* pname = differential ? "dfcm" : "fcm";
        AliasBreakdown avg;
        for (const std::string& name : workloads::benchmarkNames()) {
            AliasAnalyzer analyzer(cfg, differential);
            const AliasBreakdown b = analyzer.run(cache.getSpan(name));
            avg += b;
            table.addRow(
                    {pname, name,
                     TablePrinter::fmt(
                             b.fractionOfPredictions(AliasType::L1), 3),
                     TablePrinter::fmt(
                             b.fractionOfPredictions(AliasType::Hash), 3),
                     TablePrinter::fmt(
                             b.fractionOfPredictions(AliasType::L2Priv),
                             3),
                     TablePrinter::fmt(
                             b.fractionOfPredictions(AliasType::L2Pc), 3),
                     TablePrinter::fmt(
                             b.fractionOfPredictions(AliasType::None),
                             3)});
        }
        table.addRow(
                {pname, "avg",
                 TablePrinter::fmt(
                         avg.fractionOfPredictions(AliasType::L1), 3),
                 TablePrinter::fmt(
                         avg.fractionOfPredictions(AliasType::Hash), 3),
                 TablePrinter::fmt(
                         avg.fractionOfPredictions(AliasType::L2Priv), 3),
                 TablePrinter::fmt(
                         avg.fractionOfPredictions(AliasType::L2Pc), 3),
                 TablePrinter::fmt(
                         avg.fractionOfPredictions(AliasType::None), 3)});
    }

    table.print(std::cout);
    table.writeCsv("fig13_alias_all");
    return 0;
}
