/**
 * @file
 * Table 1 reproduction: the benchmark suite and the number of
 * predicted instructions per benchmark.
 *
 * Paper: eight SPECint95 benchmarks, 122M-157M predictions each
 * (200M-instruction traces). Here: the eight SPEC-like MiniRISC
 * kernels at the configured trace scale; the same eligibility filter
 * produces the prediction counts.
 */

#include "bench_util.hh"

#include "harness/table_printer.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace vpred;
    bench::Banner banner("table1", "benchmark suite and prediction counts");

    harness::TraceCache cache;
    harness::TablePrinter table(
            {"benchmark", "description", "instructions", "predictions",
             "pred/instr"});

    std::uint64_t total_instr = 0, total_pred = 0;
    for (const std::string& name : workloads::benchmarkNames()) {
        // Span + instruction accessors instead of getResult(): no
        // owned-trace copy when the entry is store-mapped.
        const std::uint64_t instr = cache.instructions(name);
        const std::uint64_t preds = cache.getSpan(name).size();
        total_instr += instr;
        total_pred += preds;
        table.addRow({name, workloads::findWorkload(name).description,
                      harness::TablePrinter::fmt(instr),
                      harness::TablePrinter::fmt(preds),
                      harness::TablePrinter::fmt(
                              static_cast<double>(preds)
                                      / static_cast<double>(instr),
                              3)});
    }
    table.addRow({"total", "-", harness::TablePrinter::fmt(total_instr),
                  harness::TablePrinter::fmt(total_pred),
                  harness::TablePrinter::fmt(
                          static_cast<double>(total_pred)
                                  / static_cast<double>(total_instr),
                          3)});
    table.print(std::cout);
    table.writeCsv("table1_benchmarks");
    return 0;
}
