/**
 * @file
 * Workload characterization (supports DESIGN.md §2's substitution
 * argument): for every kernel, the fraction of predicted values
 * that are constant (last-value hit), stride-predictable (side
 * stride predictor hit), context-predictable (large FCM hit while
 * not stride) and hard (none of the above). The paper's effects
 * need a population with all four kinds; this table shows each
 * kernel's mix.
 */

#include "bench_util.hh"

#include <set>

#include "core/fcm_predictor.hh"
#include "core/last_value_predictor.hh"
#include "core/stride_predictor.hh"
#include "harness/table_printer.hh"
#include "harness/trace_cache.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace vpred;
    using harness::TablePrinter;
    bench::Banner banner("characterization",
                         "value-pattern mix per workload");

    harness::TraceCache cache;
    TablePrinter table({"workload", "constant", "stride_only",
                        "context_only", "both", "hard", "static_pcs"});

    for (const workloads::Workload& w : workloads::allWorkloads()) {
        const std::span<const TraceRecord> trace = cache.getSpan(w.name);

        LastValuePredictor lvp(16);
        StridePredictor stride(16);
        FcmPredictor fcm({.l1_bits = 16, .l2_bits = 18,
                          .value_bits = 32, .hash = {}});
        std::uint64_t constant = 0, stride_only = 0, context_only = 0,
                      both = 0, hard = 0;
        std::set<Pc> pcs;
        for (const TraceRecord& rec : trace) {
            pcs.insert(rec.pc);
            const bool c = lvp.predict(rec.pc) == rec.value;
            const bool s = stride.predict(rec.pc) == rec.value;
            const bool x = fcm.predict(rec.pc) == rec.value;
            if (c)
                ++constant;
            else if (s && x)
                ++both;
            else if (s)
                ++stride_only;
            else if (x)
                ++context_only;
            else
                ++hard;
            lvp.update(rec.pc, rec.value);
            stride.update(rec.pc, rec.value);
            fcm.update(rec.pc, rec.value);
        }
        const double n = static_cast<double>(trace.size());
        table.addRow({w.name,
                      TablePrinter::fmt(static_cast<double>(constant) / n,
                                        3),
                      TablePrinter::fmt(
                              static_cast<double>(stride_only) / n, 3),
                      TablePrinter::fmt(
                              static_cast<double>(context_only) / n, 3),
                      TablePrinter::fmt(static_cast<double>(both) / n, 3),
                      TablePrinter::fmt(static_cast<double>(hard) / n, 3),
                      TablePrinter::fmt(
                              static_cast<std::uint64_t>(pcs.size()))});
    }

    table.print(std::cout);
    table.writeCsv("workload_characterization");
    std::cout << "\nconstant: last-value hit; stride_only/context_only: "
              << "only that detector hit;\nboth: stride and context "
              << "detectors hit; hard: nothing hit.\n";
    return 0;
}
