/**
 * @file
 * Figure 6 reproduction: number of accesses to each (descending-
 * sorted) FCM level-2 entry based on a history that is part of a
 * stride pattern — for the norm microkernel (Figure 6(a)) and the
 * li benchmark (Figure 6(b)).
 *
 * Paper setup: level-1 and side stride detector with 64K entries,
 * level-2 with 4096 entries. Expected shape: a high constant-pattern
 * peak on the left, then stride accesses spread over (almost) the
 * whole table — "every entry is accessed at least 5 times" for norm.
 */

#include "bench_util.hh"

#include "core/fcm_predictor.hh"
#include "core/stride_occupancy.hh"
#include "harness/table_printer.hh"
#include "harness/trace_cache.hh"

int
main()
{
    using namespace vpred;
    using harness::TablePrinter;
    bench::Banner banner("fig06",
                         "FCM level-2 stride-access occupancy (norm, li)");

    harness::TraceCache cache;
    TablePrinter summary({"workload", "stride_access_frac",
                          "entries>100", "entries>1000", "max_count",
                          "median_count"});
    TablePrinter curve({"workload", "entry_rank", "stride_accesses"});

    for (const std::string& name : {std::string("norm"),
                                    std::string("li")}) {
        FcmPredictor fcm({.l1_bits = 16, .l2_bits = 12});
        const OccupancyResult r =
                profileStrideOccupancy(fcm, cache.getSpan(name), 16);

        summary.addRow(
                {name,
                 TablePrinter::fmt(
                         static_cast<double>(r.stride_accesses)
                                 / static_cast<double>(r.total_accesses),
                         3),
                 TablePrinter::fmt(r.entriesAccessedMoreThan(100)),
                 TablePrinter::fmt(r.entriesAccessedMoreThan(1000)),
                 TablePrinter::fmt(r.sorted_counts.front()),
                 TablePrinter::fmt(
                         r.sorted_counts[r.sorted_counts.size() / 2])});

        // The sorted curve, subsampled for the console/CSV.
        for (std::size_t rank = 0; rank < r.sorted_counts.size();
             rank += 64) {
            curve.addRow({name,
                          TablePrinter::fmt(std::uint64_t{rank}),
                          TablePrinter::fmt(r.sorted_counts[rank])});
        }
    }

    summary.print(std::cout);
    std::cout << "\n(sorted per-entry curve, every 64th rank)\n";
    curve.print(std::cout);
    summary.writeCsv("fig06_summary");
    curve.writeCsv("fig06_curve");
    return 0;
}
