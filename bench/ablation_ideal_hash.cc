/**
 * @file
 * Ablation: how much is left on the table for better hashing? The
 * paper's Section 4.2 ends with "the hashing function remains
 * responsible for the majority of the mispredictions (59%), there
 * is still plenty of room for improvement." This bench compares the
 * real hashed FCM/DFCM against ideal-index variants (unbounded,
 * collision-free level-2 lookup at the same order) — the upper
 * bound any hash/table organization could reach.
 */

#include "bench_util.hh"

#include "core/dfcm_predictor.hh"
#include "core/fcm_predictor.hh"
#include "core/ideal_context_predictor.hh"
#include "core/stats.hh"
#include "harness/table_printer.hh"
#include "harness/trace_cache.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace vpred;
    using harness::TablePrinter;
    bench::Banner banner("ablation_ideal_hash",
                         "hashed vs ideal-index context predictors");

    harness::TraceCache cache;
    TablePrinter table({"l2_bits", "order", "fcm", "ideal_fcm", "dfcm",
                        "ideal_dfcm"});

    for (unsigned l2 : {10u, 12u, 16u}) {
        PredictorStats fcm_s, ifcm_s, dfcm_s, idfcm_s;
        unsigned order = 0;
        for (const std::string& name : workloads::benchmarkNames()) {
            FcmPredictor fcm({.l1_bits = 16, .l2_bits = l2,
                              .value_bits = 32, .hash = {}});
            DfcmPredictor dfcm({.l1_bits = 16, .l2_bits = l2});
            order = fcm.order();
            IdealContextPredictor ifcm(16, order, false);
            IdealContextPredictor idfcm(16, order, true);
            const std::span<const TraceRecord> trace =
                    cache.getSpan(name);
            fcm_s += runTrace(fcm, trace);
            ifcm_s += runTrace(ifcm, trace);
            dfcm_s += runTrace(dfcm, trace);
            idfcm_s += runTrace(idfcm, trace);
        }
        table.addRow({TablePrinter::fmt(std::uint64_t{l2}),
                      TablePrinter::fmt(std::uint64_t{order}),
                      TablePrinter::fmt(fcm_s.accuracy()),
                      TablePrinter::fmt(ifcm_s.accuracy()),
                      TablePrinter::fmt(dfcm_s.accuracy()),
                      TablePrinter::fmt(idfcm_s.accuracy())});
    }

    table.print(std::cout);
    table.writeCsv("ablation_ideal_hash");
    std::cout << "\nideal_* = unbounded collision-free level-2 lookup "
              << "at the same order: the headroom\nthe paper says "
              << "remains for better hashing/tagging.\n";
    return 0;
}
